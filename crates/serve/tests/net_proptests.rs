//! Wire-protocol hardening suite: codec fuzzing, backpressure surfacing,
//! and the golden fixture pinning the v1 format.
//!
//! * **Fuzz**: arbitrary bytes through `decode` and through the framed
//!   `FrameConn::recv` path yield typed errors or valid messages — never a
//!   panic, and never an allocation driven by a hostile length field (the
//!   length is capped before any buffer is sized).
//! * **Canonical codec**: any payload that decodes re-encodes to the same
//!   bytes, and any message round-trips bit-exactly (including NaN
//!   feature values, which travel as raw bits).
//! * **Backpressure on the wire**: a full `BatchQueue` maps directly to
//!   `Msg::Shed`, counted in both `NetStats` and `ServiceStats`; a
//!   connection that misses its read deadline trips the counters in both.
//! * **Golden fixture**: `tests/fixtures/wire_v1.hex` holds one canonical
//!   frame per message variant; the production framer must reproduce each
//!   byte-for-byte. Changing the format requires a `NET_PROTO` bump.

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use proptest::prelude::*;
use warper_ce::{CardinalityEstimator, LabeledExample, UpdateKind};
use warper_durable::DurableEvent;
use warper_serve::net::{
    decode, encode, mem_pair, serve_connection, ByteStream, FrameConn, Msg, NetError,
    NetServerConfig, Refusal, Role, ServerCore, MAX_NET_FRAME, NET_PROTO,
};
use warper_serve::{EstimationService, ModelSnapshot, ServiceConfig, SnapshotCell};

// ---------------------------------------------------------------------------
// Codec fuzzing
// ---------------------------------------------------------------------------

/// Every message variant with fields derived from one xorshift64* stream —
/// arbitrary bit patterns (NaN features included) without needing a
/// combinator-style strategy library.
fn msgs_from_seed(seed: u64, nf: usize, nb: usize) -> Vec<Msg> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let features: Vec<f64> = (0..nf).map(|_| f64::from_bits(next())).collect();
    let frame: Vec<u8> = (0..nb).map(|_| next() as u8).collect();
    let snapshot: Vec<u8> = (0..nb).map(|_| next() as u8).collect();
    let carry: Vec<u8> = (0..nb / 2).map(|_| next() as u8).collect();
    vec![
        Msg::Hello {
            role: if next() & 1 == 0 {
                Role::Client
            } else {
                Role::Standby
            },
            proto: next() as u16,
        },
        Msg::EstimateReq {
            id: next(),
            features,
        },
        Msg::EstimateOk {
            id: next(),
            value_bits: next(),
            generation: next(),
            batch: next() as u32,
        },
        Msg::Shed { id: next() },
        Msg::Rejected {
            id: next(),
            expected: next() as u32,
            got: next() as u32,
        },
        Msg::Unavailable {
            id: next(),
            reason: if next() & 1 == 0 {
                Refusal::NotPrimary
            } else {
                Refusal::ShuttingDown
            },
        },
        Msg::Repl {
            idx: next(),
            event: DurableEvent::WalAppend {
                wal_seq: next(),
                frame,
            },
        },
        Msg::Repl {
            idx: next(),
            event: DurableEvent::Checkpoint {
                seq: next(),
                snapshot,
                carry,
            },
        },
        Msg::ReplAck { watermark: next() },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes never panic the decoder; success implies the input
    /// was the canonical encoding (the codec has no redundant encodings).
    #[test]
    fn decode_arbitrary_bytes_is_total_and_canonical(payload in prop::collection::vec(0u8..=255, 0..512)) {
        if let Ok(msg) = decode(&payload) {
            prop_assert_eq!(encode(&msg), payload);
        }
    }

    /// Every message variant round-trips bit-exactly (NaN features
    /// included: values travel as raw `f64` bits).
    #[test]
    fn every_message_roundtrips(seed in 0u64..u64::MAX, nf in 0usize..24, nb in 0usize..96) {
        for msg in msgs_from_seed(seed, nf, nb) {
            let enc = encode(&msg);
            prop_assert!(enc.len() as u64 <= MAX_NET_FRAME as u64);
            let dec = decode(&enc);
            prop_assert!(dec.is_ok(), "own encoding must decode: {:?}", dec);
            prop_assert_eq!(encode(&dec.unwrap()), enc);
        }
    }

    /// Arbitrary bytes shoved through the framed transport produce a valid
    /// message or a typed error — `FrameConn::recv` never panics and never
    /// allocates from an unchecked length word.
    #[test]
    fn framed_transport_survives_arbitrary_bytes(raw in prop::collection::vec(0u8..=255, 0..256)) {
        let (mut a, b) = mem_pair();
        a.write_all(&raw).expect("mem pipe accepts bytes");
        drop(a); // close: the reader sees EOF after `raw`
        let mut conn = FrameConn::new(b);
        conn.stream_mut()
            .set_read_deadline(Some(Duration::from_millis(200)))
            .expect("deadline set");
        // Drain until EOF or error; each step must be a typed outcome.
        for _ in 0..8 {
            match conn.recv() {
                Ok(_) => continue,
                Err(NetError::Closed) => break,
                Err(NetError::Corrupt(_) | NetError::Cut(_) | NetError::TimedOut | NetError::Io(_)) => break,
            }
        }
    }

    /// A hostile length header is rejected before any allocation, no
    /// matter what over-cap 32-bit length it claims.
    #[test]
    fn oversized_lengths_are_rejected_before_allocation(len in (MAX_NET_FRAME + 1)..=u32::MAX) {
        let (mut a, b) = mem_pair();
        let mut header = Vec::new();
        header.extend_from_slice(&len.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        a.write_all(&header).expect("header written");
        let mut conn = FrameConn::new(b);
        conn.stream_mut()
            .set_read_deadline(Some(Duration::from_millis(200)))
            .expect("deadline set");
        prop_assert!(matches!(conn.recv(), Err(NetError::Corrupt(_))));
    }
}

// ---------------------------------------------------------------------------
// Backpressure surfacing: Shed and deadline trips on the wire + counters
// ---------------------------------------------------------------------------

/// A model whose estimates block on a gate, so the test controls exactly
/// when the worker drains the queue.
#[derive(Clone)]
struct GatedModel {
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl GatedModel {
    fn new() -> Self {
        Self {
            gate: Arc::new((Mutex::new(false), Condvar::new())),
        }
    }
    fn open(&self) {
        let (lock, cv) = &*self.gate;
        *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
        cv.notify_all();
    }
}

impl CardinalityEstimator for GatedModel {
    fn feature_dim(&self) -> usize {
        4
    }
    fn estimate(&self, _f: &[f64]) -> f64 {
        let (lock, cv) = &*self.gate;
        let mut open = lock.lock().unwrap_or_else(PoisonError::into_inner);
        while !*open {
            let (g, timeout) = cv
                .wait_timeout(open, Duration::from_secs(10))
                .unwrap_or_else(PoisonError::into_inner);
            open = g;
            if timeout.timed_out() {
                break;
            }
        }
        42.0
    }
    fn fit(&mut self, _e: &[LabeledExample]) {}
    fn update(&mut self, _e: &[LabeledExample]) {}
    fn update_kind(&self) -> UpdateKind {
        UpdateKind::FineTune
    }
    fn name(&self) -> &'static str {
        "gated"
    }
    fn snapshot(&self) -> Option<Box<dyn CardinalityEstimator>> {
        Some(Box::new(self.clone()))
    }
}

fn dial_client(core: &Arc<ServerCore>, cfg: NetServerConfig) -> FrameConn<impl ByteStream> {
    let (srv, mut cli) = mem_pair();
    let core = Arc::clone(core);
    std::thread::spawn(move || serve_connection(srv, &core, &cfg));
    cli.set_read_deadline(Some(Duration::from_secs(5)))
        .expect("deadline set");
    let mut conn = FrameConn::new(cli);
    conn.send(&Msg::Hello {
        role: Role::Client,
        proto: NET_PROTO,
    })
    .expect("hello sent");
    conn
}

/// A full `BatchQueue` surfaces as `Msg::Shed` on the wire — the request is
/// dropped at admission, never buffered — and the shed is counted in both
/// the network and service stats.
#[test]
fn full_queue_sheds_on_the_wire_and_in_both_counters() {
    let model = GatedModel::new();
    let cell = Arc::new(SnapshotCell::new(ModelSnapshot::initial(Box::new(
        model.clone(),
    ))));
    let service = EstimationService::start(
        Arc::clone(&cell),
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            max_batch: 1,
            ..Default::default()
        },
    );
    let core = ServerCore::new(service.handle(), true, None);
    let cfg = NetServerConfig::default();

    // Request 1: the worker pops it and blocks inside the gated model.
    let mut c1 = dial_client(&core, cfg);
    c1.send(&Msg::EstimateReq {
        id: 1,
        features: vec![0.5; 4],
    })
    .expect("req 1 sent");
    std::thread::sleep(Duration::from_millis(100));

    // Request 2: sits in the (capacity-1) queue.
    let mut c2 = dial_client(&core, cfg);
    c2.send(&Msg::EstimateReq {
        id: 2,
        features: vec![0.5; 4],
    })
    .expect("req 2 sent");
    std::thread::sleep(Duration::from_millis(100));

    // Request 3: the queue is full — shed, directly onto the wire.
    let mut c3 = dial_client(&core, cfg);
    c3.send(&Msg::EstimateReq {
        id: 3,
        features: vec![0.5; 4],
    })
    .expect("req 3 sent");
    assert_eq!(c3.recv().expect("shed response"), Msg::Shed { id: 3 });

    // Open the gate: the two admitted requests complete normally.
    model.open();
    assert!(matches!(
        c1.recv().expect("resp 1"),
        Msg::EstimateOk { id: 1, .. }
    ));
    assert!(matches!(
        c2.recv().expect("resp 2"),
        Msg::EstimateOk { id: 2, .. }
    ));

    let net = core.stats();
    assert_eq!(net.shed, 1, "exactly one request shed on the wire");
    assert_eq!(net.responses_ok, 2);
    let svc = service.shutdown();
    assert_eq!(svc.shed, 1, "the shed also lands in ServiceStats");
    assert_eq!(svc.served, 2);
}

/// A silent client trips the per-connection read deadline: the server
/// closes the connection and the trip is counted in `NetStats` *and*
/// `ServiceStats` (the deadline is part of the service's backpressure
/// story, not just the transport's).
#[test]
fn deadline_trips_surface_in_net_and_service_stats() {
    let cell = Arc::new(SnapshotCell::new(ModelSnapshot::initial(Box::new(
        GatedModel::new(),
    ))));
    let service = EstimationService::start(Arc::clone(&cell), ServiceConfig::default());
    let core = ServerCore::new(service.handle(), true, None);
    let cfg = NetServerConfig {
        read_deadline: Duration::from_millis(60),
        write_deadline: Duration::from_millis(200),
        hello_deadline: Duration::from_millis(200),
        repl_poll: Duration::from_millis(10),
    };

    // Hello, then silence: the read deadline must close the connection.
    let mut conn = dial_client(&core, cfg);
    let resp = conn.recv();
    assert!(
        matches!(resp, Err(NetError::Closed) | Err(NetError::Cut(_))),
        "server must close a silent connection, got {resp:?}"
    );

    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while core.stats().deadline_trips == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(core.stats().deadline_trips, 1, "trip counted in NetStats");
    let svc = service.shutdown();
    assert_eq!(svc.deadline_trips, 1, "trip counted in ServiceStats");
}

// ---------------------------------------------------------------------------
// Golden wire fixture
// ---------------------------------------------------------------------------

fn parse_hex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd hex length");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex digit"))
        .collect()
}

/// Every fixture frame decodes through the production framed transport to
/// a v1 message, and re-sending that message reproduces the frame
/// byte-for-byte. This pins the wire format: any codec or framing change
/// breaks here and requires a `NET_PROTO` bump plus a new fixture.
#[test]
fn golden_wire_fixture_roundtrips_byte_exact() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/wire_v1.hex");
    let fixture = std::fs::read_to_string(path).expect("fixture file present");
    let mut seen = 0usize;
    for line in fixture.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, hex) = line.split_once(' ').expect("fixture line: <name> <hex>");
        let frame = parse_hex(hex);

        // Decode through the production framed transport.
        let (mut a, b) = mem_pair();
        a.write_all(&frame).expect("fixture frame written");
        let mut conn = FrameConn::new(b);
        conn.stream_mut()
            .set_read_deadline(Some(Duration::from_millis(500)))
            .expect("deadline set");
        let msg = conn
            .recv()
            .unwrap_or_else(|e| panic!("fixture {name}: frame rejected: {e}"));

        // Re-encode through the production framer; must be byte-exact.
        let (c, mut d) = mem_pair();
        let mut out = FrameConn::new(c);
        out.send(&msg).expect("fixture message re-sent");
        drop(out);
        let mut echoed = Vec::new();
        let mut buf = [0u8; 256];
        d.set_read_deadline(Some(Duration::from_millis(500)))
            .expect("deadline set");
        loop {
            match d.read_some(&mut buf) {
                Ok(0) => break,
                Ok(n) => echoed.extend_from_slice(&buf[..n]),
                Err(e) => panic!("fixture {name}: raw read failed: {e}"),
            }
        }
        assert_eq!(
            echoed, frame,
            "fixture {name}: production framing diverged from the pinned v1 bytes"
        );
        seen += 1;
    }
    assert_eq!(seen, 11, "fixture must cover every message variant");
}
