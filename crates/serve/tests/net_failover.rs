//! Fault-injected failover suite for the networked estimation service.
//!
//! The replication invariant under test (DESIGN.md §11): once
//! `append_label_replicated` returns [`AckLevel::Replicated`], that label
//! survives failover — it is recoverable from the *standby's* directory —
//! and the standby only ever promotes through full recovery of a validated
//! image. The suite drives the production connection handler
//! (`serve_connection`) and standby applier over in-memory duplex pipes
//! wrapped in [`FailpointNet`], cutting / delaying / tearing / garbling the
//! replication link at a chosen operation, then recovers the standby's
//! directory and checks every replicated-acked label is present.
//!
//! The deterministic tests and a small fault subset always run; the
//! kill-at-every-op sweep for every fault kind and the larger randomized
//! schedules are behind `--features faults` (same convention as
//! `warper-durable`'s crash_recovery suite).

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use warper_ce::lm::LmLinear;
use warper_core::{WarperConfig, WarperController, WarperState};
use warper_durable::{DurabilityConfig, DurableStore, MemVfs};
use warper_serve::net::{
    mem_pair, serve_connection, AckLevel, AckMode, ByteStream, FailpointNet, FrameConn, Msg,
    NetFailPlan, NetFaultKind, NetServerConfig, ReplHub, ReplicatedStore, Role, ServerCore,
    StandbyApplier, NET_PROTO,
};
use warper_serve::{EstimationService, ModelSnapshot, ServiceConfig, SnapshotCell};

/// One healthy controller state, built once (controller construction
/// pre-trains the GAN — too slow to repeat per fault schedule).
fn base_state() -> &'static WarperState {
    static STATE: OnceLock<WarperState> = OnceLock::new();
    STATE.get_or_init(|| {
        let cfg = WarperConfig {
            embed_dim: 6,
            hidden: 16,
            n_i: 8,
            pretrain_epochs: 2,
            gamma: 100,
            ..Default::default()
        };
        let train: Vec<(Vec<f64>, f64)> = (0..40)
            .map(|i| (vec![0.2 + 0.001 * (i % 7) as f64; 4], 300.0))
            .collect();
        WarperController::new(4, &train, 1.5, cfg, 42).to_state()
    })
}

type Label = (Vec<f64>, f64);

fn label_for(step: usize) -> Label {
    (
        vec![
            0.30 + 0.002 * (step % 50) as f64,
            0.40,
            0.50,
            0.60 + 0.001 * (step / 50) as f64,
        ],
        1_000.0 + step as f64,
    )
}

fn label_key(features: &[f64], gt: f64) -> (Vec<u64>, u64) {
    (features.iter().map(|v| v.to_bits()).collect(), gt.to_bits())
}

const LABELS: usize = 8;
const CHECKPOINT_EVERY_LABELS: usize = 3;

/// What one primary → faulty-link → standby run produced.
struct Scenario {
    /// Labels acknowledged at [`AckLevel::Replicated`] before the fault.
    replicated: Vec<Label>,
    /// The standby's directory, exactly as the link death left it.
    standby_vfs: MemVfs,
    /// The standby's applier, for the promotion-gate check.
    applier: StandbyApplier,
    /// Byte-stream operations the standby performed (the sweep bound).
    ops: u64,
}

/// Run the production pipeline over an in-memory link with an optional
/// injected fault: a replicated `DurableStore` behind `serve_connection`
/// on one end, a `StandbyApplier` loop on the other, and a driver thread
/// appending labels in `AckMode::Replicated` with periodic checkpoints.
fn run_scenario(plan: Option<NetFailPlan>, n_labels: usize) -> Scenario {
    let primary_vfs = MemVfs::new();
    let (store, _) = DurableStore::open(Arc::new(primary_vfs.clone()), DurabilityConfig::default())
        .expect("fresh primary dir opens");
    let hub = Arc::new(ReplHub::new());
    let repl = ReplicatedStore::new(store, Arc::clone(&hub), Duration::from_millis(150));
    let mut state = base_state().clone();
    let model = LmLinear::new(4);
    {
        // Startup checkpoint after the tap is installed, so the oldest hub
        // entry a subscriber fetches is a full snapshot (node.rs does the
        // same).
        let mut s = repl.store.lock().unwrap_or_else(PoisonError::into_inner);
        s.checkpoint(&state, Some(&model))
            .expect("startup checkpoint");
    }

    // The handler needs a live service handle even though this scenario
    // never sends estimate traffic over the replication link.
    let cell = Arc::new(SnapshotCell::new(ModelSnapshot::initial(Box::new(
        LmLinear::new(4),
    ))));
    let service = EstimationService::start(
        Arc::clone(&cell),
        ServiceConfig {
            workers: 1,
            ..Default::default()
        },
    );
    let core = ServerCore::new(service.handle(), true, Some(Arc::clone(&hub)));
    let cfg = NetServerConfig {
        read_deadline: Duration::from_secs(2),
        write_deadline: Duration::from_secs(2),
        hello_deadline: Duration::from_secs(2),
        repl_poll: Duration::from_millis(5),
    };
    let (srv, cli) = mem_pair();
    let kill = srv.try_clone().expect("mem stream clones");
    let server = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || serve_connection(srv, &core, &cfg))
    };

    // Standby: subscribe through the failpoint, validate-and-apply, ack.
    // Any link error abandons the link (production reconnects; here the
    // death point *is* the experiment).
    let standby_vfs = MemVfs::new();
    let dead = Arc::new(AtomicBool::new(false));
    let standby = {
        let dead = Arc::clone(&dead);
        let svfs = Arc::new(standby_vfs.clone());
        std::thread::spawn(move || {
            let mut fp = match plan {
                Some(p) => FailpointNet::with_plan(cli, p),
                None => FailpointNet::new(cli),
            };
            let _ = fp.set_read_deadline(Some(Duration::from_secs(2)));
            let _ = fp.set_write_deadline(Some(Duration::from_secs(2)));
            let scell = Arc::new(SnapshotCell::new(ModelSnapshot::initial(Box::new(
                LmLinear::new(4),
            ))));
            let mut applier = StandbyApplier::new(svfs, scell);
            let mut conn = FrameConn::new(fp);
            let subscribed = conn
                .send(&Msg::Hello {
                    role: Role::Standby,
                    proto: NET_PROTO,
                })
                .and_then(|()| conn.send(&Msg::ReplAck { watermark: 0 }));
            if subscribed.is_ok() {
                // Any non-Repl message or link error kills the loop.
                while let Ok(Msg::Repl { idx, event }) = conn.recv() {
                    if idx <= applier.watermark() {
                        continue;
                    }
                    if applier.apply(idx, &event).is_err() {
                        break;
                    }
                    let ack = Msg::ReplAck {
                        watermark: applier.watermark(),
                    };
                    if conn.send(&ack).is_err() {
                        break;
                    }
                }
            }
            dead.store(true, Ordering::Release);
            let ops = conn.stream().ops();
            (applier, ops)
        })
    };

    // Drive: replicated appends mirrored into the checkpointed state,
    // exactly like the serving commit hook. Once the standby is known
    // dead, fall back to local acks so the run stays fast — those labels
    // carry no replication guarantee.
    let mut replicated = Vec::new();
    for step in 0..n_labels {
        let (features, gt) = label_for(step);
        let mode = if dead.load(Ordering::Acquire) {
            AckMode::Local
        } else {
            AckMode::Replicated
        };
        if let Ok(AckLevel::Replicated) = repl.append_label_replicated(&features, gt, true, mode) {
            replicated.push((features.clone(), gt));
        }
        state.pool.append_new(&[(features, Some(gt))]);
        if (step + 1) % CHECKPOINT_EVERY_LABELS == 0 {
            let mut s = repl.store.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = s.checkpoint(&state, Some(&model));
        }
    }

    // The crash: sever the link without draining, then collect both ends.
    core.stop();
    kill.shutdown();
    let (applier, ops) = standby.join().expect("standby thread joins");
    let _ = server.join();
    service.shutdown();
    Scenario {
        replicated,
        standby_vfs,
        applier,
        ops,
    }
}

/// The invariant: recover the standby's directory (after a simulated power
/// cut dropping unsynced bytes) and check it validates and holds every
/// replicated-acked label.
fn check_invariant(sc: &Scenario, context: &str) {
    sc.standby_vfs.power_cut();
    let (_, recovered) = DurableStore::open(
        Arc::new(sc.standby_vfs.clone()),
        DurabilityConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{context}: standby recovery failed: {e}"));
    let Some(rec) = recovered else {
        assert!(
            sc.replicated.is_empty(),
            "{context}: {} replicated-acked labels but the standby has no recoverable image",
            sc.replicated.len()
        );
        return;
    };
    rec.state
        .validate()
        .unwrap_or_else(|e| panic!("{context}: standby recovered an invalid state: {e}"));
    if !sc.replicated.is_empty() {
        assert!(
            rec.model.is_some(),
            "{context}: standby image must carry a serving model for promotion"
        );
    }
    let have: HashSet<(Vec<u64>, u64)> = rec
        .state
        .pool
        .records()
        .iter()
        .filter_map(|r| r.gt.map(|g| label_key(&r.features, g)))
        .collect();
    for (features, gt) in &sc.replicated {
        assert!(
            have.contains(&label_key(features, *gt)),
            "{context}: replicated-acked label gt={gt} lost on the standby \
             (recovered snap {}, {} wal records)",
            rec.report.snapshot_seq,
            rec.report.wal_records_replayed
        );
    }
}

/// The promotion gate: a standby with a validated checkpoint promotes
/// through full recovery; one without refuses — and replication acks can
/// only exist once the gate is open.
fn check_promotion_gate(sc: &mut Scenario, context: &str) {
    let promoted = sc.applier.promote(DurabilityConfig::default());
    if sc.applier.promotable() {
        let p = promoted
            .unwrap_or_else(|e| panic!("{context}: promotable standby failed to promote: {e}"));
        assert!(p.generation >= 1, "{context}: promotion publishes a model");
    } else {
        assert!(
            promoted.is_err(),
            "{context}: standby without a validated checkpoint must refuse promotion"
        );
        assert!(
            sc.replicated.is_empty(),
            "{context}: replicated acks require an applied (validated) checkpoint"
        );
    }
}

// ---------------------------------------------------------------------------
// Deterministic tests (always run)
// ---------------------------------------------------------------------------

#[test]
fn clean_link_replicates_and_promotes_every_label() {
    let mut sc = run_scenario(None, LABELS);
    assert_eq!(
        sc.replicated.len(),
        LABELS,
        "healthy link must replicate-ack every label"
    );
    assert!(sc.ops > 0, "counting failpoint saw the traffic");
    check_invariant(&sc, "clean link");
    check_promotion_gate(&mut sc, "clean link");
}

#[test]
fn fault_subset_never_loses_a_replicated_ack() {
    // A spread of early / hello-phase / steady-state ops; the full
    // kill-at-every-op sweep runs under --features faults.
    for kind in [
        NetFaultKind::Cut,
        NetFaultKind::Delay,
        NetFaultKind::Torn,
        NetFaultKind::Garbage,
    ] {
        for at_op in [0, 1, 2, 4, 7, 12] {
            let plan = NetFailPlan { at_op, kind };
            let mut sc = run_scenario(Some(plan), LABELS);
            let context = format!("{kind:?}@op{at_op}");
            check_invariant(&sc, &context);
            check_promotion_gate(&mut sc, &context);
        }
    }
}

#[test]
fn clients_get_typed_errors_and_never_hang_across_link_faults() {
    use std::collections::VecDeque;
    use std::sync::Mutex;
    use warper_serve::net::{Dialer, EstimateClient, NetError, RetryPolicy};

    /// Dials spin up a fresh `serve_connection` thread over a mem pipe;
    /// queued fault plans poison successive connections.
    struct MemDialer {
        cores: Vec<Arc<ServerCore>>,
        cfg: NetServerConfig,
        plans: Arc<Mutex<VecDeque<NetFailPlan>>>,
    }
    impl Dialer for MemDialer {
        fn endpoints(&self) -> usize {
            self.cores.len()
        }
        fn dial(&mut self, endpoint: usize) -> Result<Box<dyn ByteStream>, NetError> {
            let (srv, cli) = mem_pair();
            let core = Arc::clone(&self.cores[endpoint]);
            let cfg = self.cfg;
            std::thread::spawn(move || serve_connection(srv, &core, &cfg));
            let plan = self
                .plans
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front();
            Ok(match plan {
                Some(p) => Box::new(FailpointNet::with_plan(cli, p)),
                None => Box::new(cli),
            })
        }
    }

    let cell = Arc::new(SnapshotCell::new(ModelSnapshot::initial(Box::new(
        LmLinear::new(4),
    ))));
    let service = EstimationService::start(Arc::clone(&cell), ServiceConfig::default());
    let core = ServerCore::new(service.handle(), true, None);
    let cfg = NetServerConfig {
        read_deadline: Duration::from_millis(500),
        write_deadline: Duration::from_millis(500),
        hello_deadline: Duration::from_millis(500),
        repl_poll: Duration::from_millis(10),
    };
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(10),
        op_deadline: Duration::from_millis(300),
    };
    // Worst case per call: every attempt burns a full op deadline plus a
    // maximal backoff (plus scheduling slack).
    let per_call_bound = Duration::from_secs(3);

    // One faulty connection per kind, interleaved with healthy ones.
    let plans: VecDeque<NetFailPlan> = [
        NetFaultKind::Cut,
        NetFaultKind::Delay,
        NetFaultKind::Torn,
        NetFaultKind::Garbage,
    ]
    .into_iter()
    .map(|kind| NetFailPlan { at_op: 3, kind })
    .collect();
    let dialer = MemDialer {
        cores: vec![Arc::clone(&core)],
        cfg,
        plans: Arc::new(Mutex::new(plans)),
    };
    let mut client = EstimateClient::new(Box::new(dialer), policy, 0xBEEF);

    let mut ok = 0u32;
    for i in 0..12 {
        let t0 = Instant::now();
        let res = client.estimate(&[0.25, 0.5, 0.75, 0.125]);
        let took = t0.elapsed();
        assert!(
            took < per_call_bound,
            "call {i} exceeded the retry bound: {took:?} ({res:?})"
        );
        if res.is_ok() {
            ok += 1;
        }
        // Shed/Rejected/Unavailable/Disconnected are all typed outcomes;
        // reaching here at all proves the call did not hang.
    }
    assert!(
        ok >= 8,
        "bounded retry must absorb the four injected faults (ok={ok}/12)"
    );
    core.stop();
    service.shutdown();
}

// ---------------------------------------------------------------------------
// Exhaustive sweeps and randomized schedules (--features faults)
// ---------------------------------------------------------------------------

/// Kill the replication link at *every* reachable byte-stream operation,
/// for every fault kind, and prove the invariant each time. The bound
/// comes from a counting-mode run of the same workload.
#[cfg(feature = "faults")]
#[test]
fn kill_at_every_op_for_every_fault_kind() {
    let clean = run_scenario(None, LABELS);
    assert_eq!(clean.replicated.len(), LABELS);
    let total_ops = clean.ops;
    assert!(total_ops > 10, "sweep bound is implausibly small");
    for kind in [
        NetFaultKind::Cut,
        NetFaultKind::Delay,
        NetFaultKind::Torn,
        NetFaultKind::Garbage,
    ] {
        for at_op in 0..total_ops {
            let plan = NetFailPlan { at_op, kind };
            let mut sc = run_scenario(Some(plan), LABELS);
            let context = format!("sweep {kind:?}@op{at_op}/{total_ops}");
            check_invariant(&sc, &context);
            check_promotion_gate(&mut sc, &context);
        }
    }
}

mod random_schedules {
    use super::*;
    use proptest::prelude::*;

    fn kind_from(ix: usize) -> NetFaultKind {
        [
            NetFaultKind::Cut,
            NetFaultKind::Delay,
            NetFaultKind::Torn,
            NetFaultKind::Garbage,
        ][ix % 4]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(if cfg!(feature = "faults") { 32 } else { 6 }))]

        /// Random (op, fault, label-count) schedules: replicated acks
        /// survive, and promotion is gated on a validated checkpoint.
        #[test]
        fn replicated_acks_survive_any_single_link_fault(
            at_op in 0u64..48,
            kind_ix in 0usize..4,
            n_labels in 3usize..10,
        ) {
            let plan = NetFailPlan { at_op, kind: kind_from(kind_ix) };
            let mut sc = run_scenario(Some(plan), n_labels);
            let context = format!("prop {:?}@op{at_op} n={n_labels}", plan.kind);
            check_invariant(&sc, &context);
            check_promotion_gate(&mut sc, &context);
        }
    }
}
