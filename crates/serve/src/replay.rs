//! Load-generator / replay harness.
//!
//! One replay: train a model offline ([`prepare_single_table`]), start the
//! estimation service over its snapshot, then have `clients` threads replay
//! a pre-generated query stream against it — optionally paced by an
//! [`ArrivalProcess`], optionally hitting a mid-run [`DriftEvent`], and
//! optionally adapting online ([`AdaptMode`]). Per-request latency lands in
//! per-client [`LatencyHistogram`]s (merged at the end), and every served
//! estimate is folded into an order-independent checksum so two replays can
//! be compared bit-for-bit.
//!
//! # Determinism
//!
//! Query streams are generated *before* the run from the
//! [`seed_stream::LOADGEN`] and [`seed_stream::DRIFT`] streams of the
//! master seed, so what arrives never depends on thread timing. Batched
//! inference is bit-identical to per-query inference (the GEMM accumulates
//! each output row in the same order regardless of batch size), so *which*
//! micro-batch a request lands in cannot change its answer — only the model
//! generation serving it can. [`AdaptMode::Synchronous`] therefore pins the
//! whole replay: adaptation runs only at segment barriers (every
//! `invoke_every` queries and at the drift point), where every in-flight
//! request has drained, so each query is answered by a deterministic
//! generation and [`ReplayReport::estimates_checksum`] reproduces exactly —
//! for any client count. [`AdaptMode::Background`] trades that for
//! free-running adaptation (the latency-realistic mode).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use warper_ce::{CardinalityEstimator, Precision};
use warper_core::detect::{CanarySet, DataTelemetry};
use warper_core::runner::{DataDriftKind, ModelKind};
use warper_core::{
    derive_seed, prepare_single_table, seed_stream, ArrivedQuery, FeatureMap, Supervisor,
    SupervisorConfig, WarperConfig, WarperController, WarperError,
};
use warper_durable::{DurabilityConfig, DurableStore, RecoveryReport, Vfs};
use warper_metrics::{gmq, LatencyHistogram, PAPER_THETA};
use warper_query::{Annotator, RangePredicate};
use warper_storage::drift::ChangeLog;
use warper_storage::Table;
use warper_workload::{ArrivalProcess, QueryGenerator};

use crate::adapt::{AdaptConfig, AdaptStats, AdaptWorker};
use crate::service::{EstimationService, ServeError, ServiceConfig, ServiceStats};
use crate::snapshot::{ModelSnapshot, SnapshotCell};

/// What changes mid-run.
#[derive(Debug, Clone)]
pub enum DriftKind {
    /// The table is mutated (c1).
    Data(DataDriftKind),
    /// Later queries come from a different workload mix (c2/c3).
    Workload {
        /// Post-drift workload notation, e.g. `"w45"`.
        new_mix: String,
    },
}

/// A drift injected after `at_query` requests have been served.
#[derive(Debug, Clone)]
pub struct DriftEvent {
    /// Request index at which the drift lands (a segment barrier).
    pub at_query: usize,
    /// What drifts.
    pub kind: DriftKind,
}

/// How the model adapts during the replay.
pub enum AdaptMode {
    /// No adaptation: the initial snapshot serves everything.
    None,
    /// Free-running background worker (the deployment shape): arrivals
    /// stream into its inbox and committed updates hot-swap mid-traffic.
    Background(AdaptConfig),
    /// Adaptation only at segment barriers, every `invoke_every` queries —
    /// the bit-deterministic mode.
    Synchronous {
        /// Supervisor policy.
        supervisor: SupervisorConfig,
        /// Barrier spacing in queries.
        invoke_every: usize,
    },
}

/// Crash-safe persistence for a replay: where the state directory lives and
/// how often supervisor commits checkpoint.
///
/// When set, the replay opens the directory before serving: a prior run's
/// checkpoint + WAL resume the controller (and the serving model, when the
/// snapshot carried one), every annotation label is write-ahead logged, and
/// the supervisor's commit hook drives periodic checkpoints. The same
/// directory handed to a later replay resumes with zero acknowledged-label
/// loss.
pub struct DurableReplay {
    /// State directory (a [`warper_durable::StdVfs`] in deployments, a
    /// [`warper_durable::MemVfs`] / [`warper_durable::FailpointVfs`] in
    /// tests).
    pub vfs: Arc<dyn Vfs>,
    /// Checkpoint cadence and friends.
    pub cfg: DurabilityConfig,
}

/// A full replay specification.
pub struct ReplaySpec {
    /// CE model to serve.
    pub model: ModelKind,
    /// Training/pre-drift workload notation.
    pub mix: String,
    /// Offline training-set size.
    pub n_train: usize,
    /// Requests to replay.
    pub n_queries: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Mid-run drift, if any.
    pub drift: Option<DriftEvent>,
    /// Adaptation mode.
    pub adapt: AdaptMode,
    /// Service shape.
    pub service: ServiceConfig,
    /// Warper controller configuration (adaptation modes only).
    pub warper: WarperConfig,
    /// Master seed; all randomness derives from its named streams.
    pub seed: u64,
    /// Open-loop pacing. `None` replays closed-loop at full speed.
    pub pace: Option<ArrivalProcess>,
    /// Ground-truth spot checks per phase (0 disables).
    pub spot_checks: usize,
    /// Crash-safe state directory. `None` runs purely in memory.
    pub durable: Option<DurableReplay>,
    /// Serving precision: every published snapshot (including the initial
    /// one) is quantized to this and GMQ-gated against its f64 source;
    /// failures fall back to f64. Training stays f64 regardless.
    pub precision: Precision,
}

impl Default for ReplaySpec {
    fn default() -> Self {
        Self {
            model: ModelKind::LmMlp,
            mix: "w1".into(),
            n_train: 400,
            n_queries: 1_000,
            clients: 4,
            drift: None,
            adapt: AdaptMode::None,
            service: ServiceConfig::default(),
            warper: WarperConfig::default(),
            seed: 7,
            pace: None,
            spot_checks: 0,
            durable: None,
            precision: Precision::F32,
        }
    }
}

/// What the durability layer did during one replay.
#[derive(Debug, Clone, Default)]
pub struct DurabilityReport {
    /// Whether the state directory held a prior image the replay resumed.
    pub resumed: bool,
    /// Snapshot sequence recovery restored from (0 when not resumed).
    pub resumed_from_seq: u64,
    /// Corrupt snapshots skipped before a good one was found.
    pub corrupt_snapshots: usize,
    /// WAL records replayed into the pool on top of the snapshot.
    pub wal_records_replayed: usize,
    /// Whether recovery truncated a corrupt WAL tail.
    pub wal_truncated: bool,
    /// Wall-clock seconds recovery took (0 when not resumed).
    pub recovery_secs: f64,
    /// Pool size right after recovery.
    pub restored_pool_len: usize,
    /// Usable labels in the pool right after recovery.
    pub restored_pool_labeled: usize,
    /// Checkpoints published during this replay.
    pub checkpoints: usize,
    /// Checkpoint attempts that failed (retried at the next commit).
    pub checkpoint_failures: usize,
    /// Labels acknowledged into the WAL during this replay.
    pub wal_appends: usize,
    /// Label appends that failed (label kept in memory, not crash-safe).
    pub wal_append_failures: usize,
    /// Newest checkpoint sequence when the replay ended.
    pub final_seq: u64,
    /// Wall-clock seconds writing checkpoints.
    pub checkpoint_secs: f64,
    /// Wall-clock seconds appending to the WAL.
    pub wal_secs: f64,
}

/// Everything a replay measured.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Requests answered with an estimate.
    pub served: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests that failed for any other reason.
    pub errors: usize,
    /// Merged per-request latency (nanoseconds).
    pub latency: LatencyHistogram,
    /// Wall-clock seconds for the serving phase (excludes offline
    /// preparation).
    pub wall_secs: f64,
    /// Served requests per wall-clock second.
    pub throughput_qps: f64,
    /// Model generations published during the run.
    pub generations_published: u64,
    /// Largest `cell version − serving generation` any response observed.
    pub max_staleness: u64,
    /// Order-independent FNV checksum over `(index, estimate bits)` of all
    /// served requests — equal checksums mean bit-identical estimate
    /// streams.
    pub estimates_checksum: u64,
    /// GMQ of served estimates vs fresh ground truth, pre-drift phase.
    pub spot_gmq_pre: Option<f64>,
    /// Same for the post-drift phase.
    pub spot_gmq_post: Option<f64>,
    /// Precision the final published snapshot served at. Equals the
    /// requested [`ReplaySpec::precision`] unless the quantized copy was
    /// refused by the GMQ gate (or the model has no quantized path), in
    /// which case the f64 fallback served.
    pub precision: Precision,
    /// Service counters (batching, shed, rejects).
    pub service: ServiceStats,
    /// Adaptation stats (adaptation modes only).
    pub adapt: Option<AdaptStats>,
    /// Durability layer activity (only with [`ReplaySpec::durable`]).
    pub durability: Option<DurabilityReport>,
}

/// What one client thread collected.
#[derive(Default)]
struct ClientLog {
    hist: LatencyHistogram,
    results: Vec<(usize, u64)>,
    shed: usize,
    errors: usize,
    max_staleness: u64,
}

/// FNV-1a over the served `(index, bits)` pairs, sorted by index first so
/// the digest is independent of client interleaving.
pub(crate) fn checksum(results: &[(usize, u64)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &(idx, bits) in results {
        fold(idx as u64);
        fold(bits);
    }
    h
}

/// The synchronous-mode adaptation state (controller + supervisor + the
/// telemetry probes), driven at segment barriers.
struct SyncAdapter {
    ctl: WarperController,
    model: Box<dyn CardinalityEstimator>,
    sup: Supervisor,
    changelog: ChangeLog,
    canaries: CanarySet,
    stats: AdaptStats,
    published: Arc<AtomicU64>,
    quant_refusals: Arc<AtomicU64>,
    store: Option<Arc<Mutex<DurableStore>>>,
}

impl SyncAdapter {
    fn step(
        &mut self,
        arrived: &[ArrivedQuery],
        table: &RwLock<Table>,
        fmap: &FeatureMap,
        annotator: &Annotator,
    ) {
        if arrived.is_empty() {
            return;
        }
        let telemetry = {
            let t = table.read().unwrap_or_else(PoisonError::into_inner);
            DataTelemetry {
                changed_fraction: self.changelog.changed_fraction(&t),
                canary_max_change: self.canaries.max_relative_change(&t),
            }
        };
        let store = self.store.clone();
        let mut annotate = |qs: &[Vec<f64>]| -> Vec<Option<f64>> {
            let preds: Vec<RangePredicate> = qs.iter().map(|f| fmap.defeaturize(f)).collect();
            let labels: Vec<Option<f64>> = {
                let t = table.read().unwrap_or_else(PoisonError::into_inner);
                annotator
                    .count_batch(&t, &preds)
                    .into_iter()
                    .map(|c| Some(c as f64))
                    .collect()
            };
            if let Some(store) = &store {
                crate::adapt::log_annotations(store, qs, &labels);
            }
            labels
        };
        if let Some(store) = &self.store {
            crate::adapt::log_labeled_arrivals(store, arrived);
        }
        let t0 = Instant::now();
        let report = self.sup.invoke(
            &mut self.ctl,
            self.model.as_mut(),
            arrived,
            &telemetry,
            &mut annotate,
        );
        self.stats.adapt_secs += t0.elapsed().as_secs_f64();
        self.stats.invocations += 1;
        self.stats.annotated += report.annotated;
        self.stats.generated += report.generated;
        if report.rollback.is_some() {
            self.stats.rollbacks += 1;
        } else {
            self.stats.commits += 1;
        }
    }

    fn into_stats(self) -> AdaptStats {
        let mut stats = self.stats;
        stats.published = self.published.load(Ordering::Relaxed) as usize;
        stats.quant_refusals = self.quant_refusals.load(Ordering::Relaxed) as usize;
        stats
    }
}

fn build_controller(
    fmap: &FeatureMap,
    training_set: &[(Vec<f64>, f64)],
    baseline_gmq: f64,
    warper: WarperConfig,
    seed: u64,
) -> WarperController {
    WarperController::new(
        fmap.dim(),
        training_set,
        baseline_gmq,
        warper,
        derive_seed(seed, seed_stream::STRATEGY),
    )
    .with_canonicalizer(fmap.make_canonicalizer())
}

/// Runs one replay against `table`.
///
/// Errors on invalid workload notation or a model that cannot snapshot
/// (serving requires an immutable copy to publish).
pub fn run_replay(table: &Table, spec: &ReplaySpec) -> Result<ReplayReport, WarperError> {
    let n = spec.n_queries;
    let drift_at = spec.drift.as_ref().map(|d| d.at_query.min(n)).unwrap_or(n);

    // ---- Offline phase: train the model, pre-generate the query streams.
    let prepared = prepare_single_table(table, &spec.mix, spec.model, spec.n_train, spec.seed)?;
    let fmap = prepared.fmap.clone();

    let mut loadgen = StdRng::seed_from_u64(derive_seed(spec.seed, seed_stream::LOADGEN));
    let mut gen1 = QueryGenerator::try_from_notation(table, &spec.mix)?;
    let mut preds: Vec<RangePredicate> = gen1.generate_many(drift_at, &mut loadgen);

    // The post-drift table is materialized up front (same DRIFT-stream RNG
    // the live swap uses), so phase-2 queries can be pre-generated against
    // the exact data they will run on.
    let drifted_table: Option<Table> = match spec.drift.as_ref().map(|d| &d.kind) {
        Some(DriftKind::Data(kind)) => {
            let mut t = table.clone();
            let mut rng = StdRng::seed_from_u64(derive_seed(spec.seed, seed_stream::DRIFT));
            kind.apply(&mut t, &mut rng);
            Some(t)
        }
        Some(DriftKind::Workload { .. }) => Some(table.clone()),
        None => None,
    };
    if let (Some(drift), Some(post)) = (spec.drift.as_ref(), drifted_table.as_ref()) {
        let mix2 = match &drift.kind {
            DriftKind::Workload { new_mix } => new_mix.as_str(),
            DriftKind::Data(_) => spec.mix.as_str(),
        };
        let mut gen2 = QueryGenerator::try_from_notation(post, mix2)?;
        preds.extend(gen2.generate_many(n - drift_at, &mut loadgen));
    }
    let feats: Vec<Vec<f64>> = preds.iter().map(|p| fmap.featurize(p)).collect();

    // ---- Durable state directory: recover a prior run's image, if any.
    let durable_err =
        |e: warper_durable::DurabilityError| WarperError::InvalidState(format!("durable: {e}"));
    let mut recovery: Option<RecoveryReport> = None;
    let mut recovered_state = None;
    let mut recovered_model = None;
    let store: Option<Arc<Mutex<DurableStore>>> = match &spec.durable {
        None => None,
        Some(d) => {
            let (s, rec) = DurableStore::open(Arc::clone(&d.vfs), d.cfg).map_err(durable_err)?;
            if let Some(rec) = rec {
                recovery = Some(rec.report);
                recovered_state = Some(rec.state);
                recovered_model = rec.model;
            }
            Some(Arc::new(Mutex::new(s)))
        }
    };

    // ---- Serving state: snapshot for the workers, original for adaptation.
    // A recovered model (same feature space) resumes serving; otherwise the
    // freshly trained one takes over and the recovered controller state
    // still seeds adaptation.
    let adapt_model: Box<dyn CardinalityEstimator> = match recovered_model {
        Some(m) if m.feature_dim() == fmap.dim() => m,
        _ => prepared.model,
    };
    let serving = adapt_model.snapshot().ok_or_else(|| {
        WarperError::InvalidState(format!(
            "{} cannot snapshot; serving requires an immutable copy",
            adapt_model.name()
        ))
    })?;
    // Quantize-and-gate the initial snapshot at the requested precision,
    // probing with the offline training set (the pool is not built yet).
    let quant_tolerance = match &spec.adapt {
        AdaptMode::Background(cfg) => cfg.supervisor.quant_gmq_tolerance,
        AdaptMode::Synchronous { supervisor, .. } => supervisor.quant_gmq_tolerance,
        AdaptMode::None => SupervisorConfig::default().quant_gmq_tolerance,
    };
    let probe_refs: Vec<&[f64]> = prepared
        .training_set
        .iter()
        .map(|(f, _)| f.as_slice())
        .collect();
    let (serving, initial_precision, _) = crate::quant::prepare_serving_model(
        adapt_model.as_ref(),
        serving,
        spec.precision,
        &probe_refs,
        quant_tolerance,
    );
    drop(probe_refs);
    let cell = Arc::new(SnapshotCell::new(
        ModelSnapshot::initial(serving).with_precision(initial_precision),
    ));
    let shared = Arc::new(RwLock::new(table.clone()));
    let annotator = Annotator::new();

    enum Adapter {
        None,
        Background(AdaptWorker),
        Sync(Box<SyncAdapter>),
    }

    // Adaptation-side controller: resumed from the recovered image when one
    // exists (its pool already contains every replayed label), else fresh.
    let mut make_ctl =
        || -> Result<WarperController, WarperError> {
            match recovered_state.take() {
                Some(state) => Ok(WarperController::from_state(state)?
                    .with_canonicalizer(fmap.make_canonicalizer())),
                None => Ok(build_controller(
                    &fmap,
                    &prepared.training_set,
                    prepared.baseline_gmq,
                    spec.warper,
                    spec.seed,
                )),
            }
        };
    // A fresh directory gets an immediate base checkpoint so labels logged
    // before the first commit have a snapshot to replay onto.
    let initial_checkpoint = |store: &Arc<Mutex<DurableStore>>,
                              ctl: &WarperController,
                              model: &dyn CardinalityEstimator| {
        let mut s = store.lock().unwrap_or_else(PoisonError::into_inner);
        if s.seq() == 0 {
            let _ = s.checkpoint(&ctl.to_state(), Some(model));
        }
    };

    let mut adapter = match &spec.adapt {
        AdaptMode::None => Adapter::None,
        AdaptMode::Background(cfg) => {
            let cfg = AdaptConfig {
                seed: spec.seed,
                precision: spec.precision,
                ..*cfg
            };
            let ctl = make_ctl()?;
            if let Some(store) = &store {
                initial_checkpoint(store, &ctl, adapt_model.as_ref());
            }
            Adapter::Background(AdaptWorker::spawn_with_store(
                ctl,
                adapt_model,
                Arc::clone(&cell),
                Arc::clone(&shared),
                fmap.clone(),
                cfg,
                store.clone(),
            ))
        }
        AdaptMode::Synchronous { supervisor, .. } => {
            let ctl = make_ctl()?;
            if let Some(store) = &store {
                initial_checkpoint(store, &ctl, adapt_model.as_ref());
            }
            let published = Arc::new(AtomicU64::new(0));
            let quant_refusals = Arc::new(AtomicU64::new(0));
            let hook_cell = Arc::clone(&cell);
            let hook_published = Arc::clone(&published);
            let hook_refusals = Arc::clone(&quant_refusals);
            let hook_store = store.clone();
            let hook_precision = spec.precision;
            let hook_tolerance = supervisor.quant_gmq_tolerance;
            let sup =
                Supervisor::new(*supervisor).with_commit_hook(Box::new(move |state, model| {
                    let next = hook_cell.version() + 1;
                    if let Some(full) = model.snapshot() {
                        let probes = crate::quant::probe_features(state);
                        let refs: Vec<&[f64]> = probes.iter().map(Vec::as_slice).collect();
                        let (serving, served, outcome) = crate::quant::prepare_serving_model(
                            model,
                            full,
                            hook_precision,
                            &refs,
                            hook_tolerance,
                        );
                        if matches!(outcome, crate::quant::QuantOutcome::Refused(_)) {
                            hook_refusals.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Ok(snap) = ModelSnapshot::committed(next, serving, state) {
                            hook_cell.publish(snap.with_precision(served));
                            hook_published.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if let Some(store) = &hook_store {
                        let mut s = store.lock().unwrap_or_else(PoisonError::into_inner);
                        let _ = s.note_commit(state, Some(model));
                    }
                }));
            let mut rng = StdRng::seed_from_u64(derive_seed(spec.seed, seed_stream::ADAPT));
            let (changelog, canaries) = {
                let t = shared.read().unwrap_or_else(PoisonError::into_inner);
                (
                    ChangeLog::mark(&t),
                    CanarySet::new(&t, spec.warper.canaries, &mut rng),
                )
            };
            Adapter::Sync(Box::new(SyncAdapter {
                ctl,
                model: adapt_model,
                sup,
                changelog,
                canaries,
                stats: AdaptStats::default(),
                published,
                quant_refusals,
                store: store.clone(),
            }))
        }
    };

    // ---- Segment plan: barriers at the drift point and (synchronous mode)
    // every `invoke_every` queries.
    let mut boundaries: Vec<usize> = vec![0, drift_at, n];
    if let AdaptMode::Synchronous { invoke_every, .. } = &spec.adapt {
        let step = (*invoke_every).max(1);
        boundaries.extend((1..).map(|k| k * step).take_while(|&b| b < n));
    }
    boundaries.sort_unstable();
    boundaries.dedup();

    let service = EstimationService::start(Arc::clone(&cell), spec.service);
    let handle = service.handle();
    let clients = spec.clients.max(1);
    let start = Instant::now();
    let mut logs: Vec<ClientLog> = Vec::with_capacity(clients);
    let mut pending: Vec<ArrivedQuery> = Vec::new();

    for w in boundaries.windows(2) {
        let (seg_start, seg_end) = (w[0], w[1]);
        if seg_start == seg_end {
            continue;
        }
        // Serve the segment from `clients` threads, striped by index.
        let seg_logs: Vec<ClientLog> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let handle = handle.clone();
                    let cell = &cell;
                    let feats = &feats;
                    let adapter_ref = match &adapter {
                        Adapter::Background(w) => Some(w),
                        _ => None,
                    };
                    s.spawn(move || {
                        let mut log = ClientLog::default();
                        for idx in (seg_start..seg_end).filter(|i| i % clients == c) {
                            if let Some(p) = &spec.pace {
                                let due =
                                    Duration::from_secs_f64(idx as f64 / p.rate_per_sec.max(1e-9));
                                if let Some(wait) = due.checked_sub(start.elapsed()) {
                                    std::thread::sleep(wait);
                                }
                            }
                            let t0 = Instant::now();
                            match handle.estimate(feats[idx].clone()) {
                                Ok(est) => {
                                    log.hist.record_duration(t0.elapsed());
                                    log.results.push((idx, est.value.to_bits()));
                                    let stale = cell.version().saturating_sub(est.generation);
                                    log.max_staleness = log.max_staleness.max(stale);
                                    if let Some(worker) = adapter_ref {
                                        worker.observe(ArrivedQuery {
                                            features: feats[idx].clone(),
                                            gt: None,
                                        });
                                    }
                                }
                                Err(ServeError::Shed) => log.shed += 1,
                                Err(_) => log.errors += 1,
                            }
                        }
                        log
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        });
        logs.extend(seg_logs);

        // Barrier work: drift lands, then synchronous adaptation runs.
        if seg_end == drift_at {
            if let Some(post) = drifted_table.as_ref() {
                let mut t = shared.write().unwrap_or_else(PoisonError::into_inner);
                *t = post.clone();
            }
        }
        if let Adapter::Sync(sync) = &mut adapter {
            pending.extend((seg_start..seg_end).map(|idx| ArrivedQuery {
                features: feats[idx].clone(),
                gt: None,
            }));
            sync.step(&pending, &shared, &fmap, &annotator);
            pending.clear();
        }
    }

    let wall_secs = start.elapsed().as_secs_f64();
    let service_stats = service.shutdown();
    let adapt_stats = match adapter {
        Adapter::None => None,
        Adapter::Background(worker) => Some(worker.finish()),
        Adapter::Sync(sync) => Some(sync.into_stats()),
    };

    // ---- Durability summary (the worker has joined; the store is idle).
    let durability = store.map(|store| {
        let s = store.lock().unwrap_or_else(PoisonError::into_inner);
        let stats = s.stats();
        let mut d = DurabilityReport {
            resumed: recovery.is_some(),
            final_seq: s.seq(),
            checkpoints: stats.checkpoints,
            checkpoint_failures: stats.checkpoint_failures,
            wal_appends: stats.wal_appends,
            wal_append_failures: stats.wal_append_failures,
            checkpoint_secs: stats.checkpoint_secs,
            wal_secs: stats.wal_secs,
            ..DurabilityReport::default()
        };
        if let Some(rec) = recovery {
            d.resumed_from_seq = rec.snapshot_seq;
            d.corrupt_snapshots = rec.corrupt_snapshots;
            d.wal_records_replayed = rec.wal_records_replayed;
            d.wal_truncated = rec.wal_truncated;
            d.recovery_secs = rec.recovery_secs;
            d.restored_pool_len = rec.pool_len;
            d.restored_pool_labeled = rec.pool_labeled;
        }
        d
    });

    // ---- Merge client logs.
    let mut latency = LatencyHistogram::new();
    let mut results: Vec<(usize, u64)> = Vec::with_capacity(n);
    let (mut shed, mut errors, mut max_staleness) = (0usize, 0usize, 0u64);
    for log in logs {
        latency.merge(&log.hist);
        results.extend(log.results);
        shed += log.shed;
        errors += log.errors;
        max_staleness = max_staleness.max(log.max_staleness);
    }
    results.sort_unstable_by_key(|&(idx, _)| idx);

    // ---- Ground-truth spot checks: GMQ of what was actually served vs
    // fresh counts on the table of each phase.
    let spot = |lo: usize, hi: usize, t: &Table| -> Option<f64> {
        if spec.spot_checks == 0 || lo >= hi {
            return None;
        }
        let slice: Vec<&(usize, u64)> = results
            .iter()
            .filter(|(idx, _)| (lo..hi).contains(idx))
            .collect();
        if slice.is_empty() {
            return None;
        }
        let stride = (slice.len() / spec.spot_checks).max(1);
        let picked: Vec<&(usize, u64)> = slice.iter().step_by(stride).copied().collect();
        let checked: Vec<RangePredicate> =
            picked.iter().map(|(idx, _)| preds[*idx].clone()).collect();
        let actuals: Vec<f64> = annotator
            .count_batch(t, &checked)
            .into_iter()
            .map(|c| c as f64)
            .collect();
        let ests: Vec<f64> = picked
            .iter()
            .map(|(_, bits)| f64::from_bits(*bits))
            .collect();
        Some(gmq(&ests, &actuals, PAPER_THETA))
    };
    let spot_gmq_pre = spot(0, drift_at, table);
    let spot_gmq_post = drifted_table
        .as_ref()
        .and_then(|post| spot(drift_at, n, post));

    let served = results.len();
    Ok(ReplayReport {
        served,
        shed,
        errors,
        estimates_checksum: checksum(&results),
        latency,
        wall_secs,
        throughput_qps: served as f64 / wall_secs.max(1e-9),
        generations_published: cell.version(),
        precision: cell.load().1.precision,
        max_staleness,
        spot_gmq_pre,
        spot_gmq_post,
        service: service_stats,
        adapt: adapt_stats,
        durability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use warper_storage::{generate, DatasetKind};

    fn small_warper() -> WarperConfig {
        WarperConfig {
            embed_dim: 6,
            hidden: 24,
            n_i: 5,
            pretrain_epochs: 2,
            gamma: 80,
            n_p: 40,
            ..Default::default()
        }
    }

    #[test]
    fn plain_replay_serves_everything() {
        let table = generate(DatasetKind::Prsa, 1_500, 5);
        let spec = ReplaySpec {
            n_train: 200,
            n_queries: 300,
            clients: 3,
            spot_checks: 20,
            seed: 13,
            ..Default::default()
        };
        let rep = run_replay(&table, &spec).unwrap();
        assert_eq!(rep.served, 300);
        assert_eq!(rep.shed, 0);
        assert_eq!(rep.errors, 0);
        assert_eq!(rep.generations_published, 0);
        assert_eq!(rep.max_staleness, 0);
        assert_eq!(rep.latency.count(), 300);
        assert!(rep.throughput_qps > 0.0);
        let pre = rep.spot_gmq_pre.unwrap();
        assert!(pre >= 1.0 && pre.is_finite());
        assert!(rep.spot_gmq_post.is_none(), "no drift, no post phase");
    }

    #[test]
    fn drift_with_background_adaptation_hot_swaps_without_errors() {
        let table = generate(DatasetKind::Prsa, 2_000, 6);
        let spec = ReplaySpec {
            n_train: 250,
            n_queries: 400,
            clients: 4,
            drift: Some(DriftEvent {
                at_query: 200,
                kind: DriftKind::Workload {
                    new_mix: "w4".into(),
                },
            }),
            adapt: AdaptMode::Background(AdaptConfig {
                invoke_every: 60,
                max_wait: Duration::from_millis(10),
                ..Default::default()
            }),
            warper: small_warper(),
            seed: 17,
            ..Default::default()
        };
        let rep = run_replay(&table, &spec).unwrap();
        assert_eq!(rep.errors, 0);
        assert_eq!(rep.served + rep.shed, 400);
        let adapt = rep.adapt.unwrap();
        assert!(adapt.invocations >= 1, "{adapt:?}");
        assert_eq!(adapt.publish_failures, 0);
        assert_eq!(rep.generations_published, adapt.published as u64);
    }

    #[test]
    fn synchronous_replay_is_bit_deterministic_across_runs_and_client_counts() {
        let table = generate(DatasetKind::Prsa, 1_500, 7);
        let spec = |clients: usize| ReplaySpec {
            n_train: 200,
            n_queries: 240,
            clients,
            drift: Some(DriftEvent {
                at_query: 120,
                kind: DriftKind::Data(DataDriftKind::SortTruncate { col: 1 }),
            }),
            adapt: AdaptMode::Synchronous {
                supervisor: SupervisorConfig::default(),
                invoke_every: 80,
            },
            warper: small_warper(),
            seed: 23,
            ..Default::default()
        };
        let a = run_replay(&table, &spec(1)).unwrap();
        let b = run_replay(&table, &spec(1)).unwrap();
        let c = run_replay(&table, &spec(3)).unwrap();
        assert_eq!(a.served, 240);
        assert_eq!(a.shed + a.errors, 0);
        assert_eq!(
            a.estimates_checksum, b.estimates_checksum,
            "same spec must replay bit-identically"
        );
        assert_eq!(
            a.estimates_checksum, c.estimates_checksum,
            "client count must not change the estimate stream"
        );
        let adapt = a.adapt.unwrap();
        assert!(adapt.invocations >= 2, "{adapt:?}");
    }
}
