//! Quantize-and-gate: the publication-side half of the dual-precision
//! lifecycle (DESIGN.md §10).
//!
//! The adaptation loop trains and validates in f64; this module decides
//! what the *readers* get. At every publication the requested serving
//! precision is applied to a copy of the validated model, and the copy is
//! admitted only if its estimates stay within a GMQ drift budget of the
//! full-precision model over a probe workload drawn from the query pool.
//! A candidate that fails the gate — or a model with no quantized
//! implementation — falls back to the f64 snapshot, so the serving side
//! never trades correctness for speed silently.
//!
//! The gate compares the two models on the *same* queries, so any drift is
//! pure numeric (rounding) error: f32 passes with orders of magnitude to
//! spare, while int8's per-row weight rounding is exactly what the budget
//! exists to judge.

use warper_ce::{quantize_for_serving, CardinalityEstimator, Precision};
use warper_core::WarperState;
use warper_metrics::{gmq, PAPER_THETA};

/// Upper bound on gate probes: enough for a stable geometric mean, cheap
/// enough to run inside every commit hook.
const MAX_PROBES: usize = 256;

/// What [`gate_and_choose`] decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantOutcome {
    /// The requested precision was f64; no gate ran.
    FullPrecision,
    /// A quantized candidate passed the gate and was chosen (its measured
    /// GMQ drift vs the full model is attached).
    Quantized(f64),
    /// No quantized path exists for this model type; served f64.
    Unsupported,
    /// The candidate exceeded the drift budget (measured drift attached);
    /// served f64.
    Refused(f64),
}

impl QuantOutcome {
    /// Whether the f64 model ended up serving.
    pub fn fell_back(&self) -> bool {
        matches!(self, QuantOutcome::Unsupported | QuantOutcome::Refused(_))
    }
}

/// Measures the quantized candidate's GMQ drift against the full model over
/// `probes` and returns the model to publish plus what happened.
///
/// `full` must be the serving snapshot of the validated f64 model;
/// `candidate` its quantized copy (pass `None` when quantization is
/// unsupported or not requested). With an empty probe set the gate cannot
/// measure drift and refuses conservatively.
pub fn gate_and_choose(
    full: Box<dyn CardinalityEstimator>,
    candidate: Option<Box<dyn CardinalityEstimator>>,
    requested: Precision,
    probes: &[&[f64]],
    tolerance: f64,
) -> (Box<dyn CardinalityEstimator>, Precision, QuantOutcome) {
    if requested == Precision::F64 {
        return (full, Precision::F64, QuantOutcome::FullPrecision);
    }
    let Some(candidate) = candidate else {
        return (full, Precision::F64, QuantOutcome::Unsupported);
    };
    if probes.is_empty() {
        return (full, Precision::F64, QuantOutcome::Refused(f64::INFINITY));
    }
    let reference = full.estimate_many(probes);
    let quantized = candidate.estimate_many(probes);
    // GMQ of quantized-vs-full: treats the f64 estimates as "truth", so a
    // perfectly faithful copy scores exactly 1.0.
    let drift = gmq(&quantized, &reference, PAPER_THETA);
    if drift.is_finite() && drift <= 1.0 + tolerance {
        (candidate, requested, QuantOutcome::Quantized(drift))
    } else {
        (full, Precision::F64, QuantOutcome::Refused(drift))
    }
}

/// Quantizes `model`'s serving copy at `requested` and runs the gate in one
/// step — the convenience wrapper the commit hook and replay setup use.
pub fn prepare_serving_model(
    model: &dyn CardinalityEstimator,
    full_snapshot: Box<dyn CardinalityEstimator>,
    requested: Precision,
    probes: &[&[f64]],
    tolerance: f64,
) -> (Box<dyn CardinalityEstimator>, Precision, QuantOutcome) {
    let candidate = quantize_for_serving(model, requested)
        .map(|q| Box::new(q) as Box<dyn CardinalityEstimator>);
    gate_and_choose(full_snapshot, candidate, requested, probes, tolerance)
}

/// Stride-samples up to [`MAX_PROBES`] probe feature vectors from the query
/// pool (every record, labeled or not — the gate needs inputs, not labels).
pub fn probe_features(state: &WarperState) -> Vec<Vec<f64>> {
    let records = state.pool.records();
    let stride = records.len().div_ceil(MAX_PROBES).max(1);
    records
        .iter()
        .step_by(stride)
        .map(|r| r.features.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warper_ce::lm::{LmMlp, LmMlpParams};

    fn probe_set(dim: usize, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|c| ((i * dim + c) % 13) as f64 / 13.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn f32_candidate_passes_and_int8_is_judged() {
        let model = LmMlp::new(10, LmMlpParams::default(), 99);
        let probes = probe_set(10, 64);
        let refs: Vec<&[f64]> = probes.iter().map(Vec::as_slice).collect();
        for precision in [Precision::F32, Precision::Int8] {
            let (chosen, served, outcome) = prepare_serving_model(
                &model,
                model.snapshot().expect("LmMlp snapshots"),
                precision,
                &refs,
                0.05,
            );
            match outcome {
                QuantOutcome::Quantized(drift) => {
                    assert_eq!(served, precision);
                    assert!((1.0..=1.05).contains(&drift), "drift {drift}");
                    assert!(
                        chosen.name().contains('['),
                        "quantized name {}",
                        chosen.name()
                    );
                }
                QuantOutcome::Refused(drift) => {
                    // int8 may legitimately refuse on an unlucky init; f64
                    // must then be serving.
                    assert_eq!(precision, Precision::Int8, "f32 must never refuse");
                    assert_eq!(served, Precision::F64);
                    assert!(drift > 1.05, "refused drift {drift}");
                    assert_eq!(chosen.name(), "LM-mlp");
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn f64_request_skips_the_gate() {
        let model = LmMlp::new(6, LmMlpParams::default(), 1);
        let (chosen, served, outcome) = prepare_serving_model(
            &model,
            model.snapshot().expect("LmMlp snapshots"),
            Precision::F64,
            &[],
            0.05,
        );
        assert_eq!(outcome, QuantOutcome::FullPrecision);
        assert_eq!(served, Precision::F64);
        assert_eq!(chosen.name(), "LM-mlp");
    }

    #[test]
    fn unsupported_model_falls_back_to_f64() {
        let model = warper_ce::lm::LmLinear::new(4);
        let (_, served, outcome) = prepare_serving_model(
            &model,
            Box::new(warper_ce::lm::LmLinear::new(4)),
            Precision::F32,
            &[],
            0.05,
        );
        assert_eq!(outcome, QuantOutcome::Unsupported);
        assert!(outcome.fell_back());
        assert_eq!(served, Precision::F64);
    }

    #[test]
    fn empty_probe_set_refuses_conservatively() {
        let model = LmMlp::new(6, LmMlpParams::default(), 2);
        let (_, served, outcome) = prepare_serving_model(
            &model,
            model.snapshot().expect("LmMlp snapshots"),
            Precision::F32,
            &[],
            0.05,
        );
        assert!(matches!(outcome, QuantOutcome::Refused(d) if d.is_infinite()));
        assert_eq!(served, Precision::F64);
    }
}
