//! Bounded micro-batching request queue.
//!
//! Producers [`try_push`](BatchQueue::try_push) and are *never* blocked: a
//! full queue sheds the request back to the caller (admission control —
//! callers turn that into a fast "shed" response instead of queueing
//! unbounded work). Consumers [`pop_batch`](BatchQueue::pop_batch): block
//! for the first item, then linger briefly to let a batch accumulate, then
//! drain up to `max_n` items in one lock acquisition. That linger is what
//! converts a stream of single requests into the batched inference the
//! model's `estimate_many` path is fast at, while bounding the latency a
//! lone request pays to at most the linger.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Why a push was refused. The item comes back to the caller in both cases.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — shed the request.
    Full(T),
    /// The queue was closed — the service is shutting down.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with batched, lingering consumption.
pub struct BatchQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BatchQueue<T> {
    /// A queue admitting at most `capacity` items ≥ 1.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item` unless the queue is full or closed. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops a batch of up to `max_n` items into `out` (cleared first).
    ///
    /// Blocks until at least one item is available, then waits up to
    /// `linger` for more to arrive (returning early once `max_n` are
    /// ready). Returns `false` only when the queue is closed *and* drained
    /// — the consumer's signal to exit.
    pub fn pop_batch(&self, max_n: usize, linger: Duration, out: &mut Vec<T>) -> bool {
        out.clear();
        let max_n = max_n.max(1);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // Phase 1: block for the first item.
        while inner.items.is_empty() {
            if inner.closed {
                return false;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        // Phase 2: linger for a fuller batch.
        if !linger.is_zero() {
            let deadline = Instant::now() + linger;
            while inner.items.len() < max_n && !inner.closed {
                let now = Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (guard, timeout) = self
                    .not_empty
                    .wait_timeout(inner, left)
                    .unwrap_or_else(PoisonError::into_inner);
                inner = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let take = inner.items.len().min(max_n);
        out.extend(inner.items.drain(..take));
        // More items than we took: wake a sibling consumer.
        let leftovers = !inner.items.is_empty();
        drop(inner);
        if leftovers {
            self.not_empty.notify_one();
        }
        true
    }

    /// Closes the queue: future pushes fail, consumers drain what is left
    /// and then see `false` from [`pop_batch`](Self::pop_batch).
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let q = BatchQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_caps_at_max_n_and_leaves_the_rest() {
        let q = BatchQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(4, Duration::ZERO, &mut out));
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BatchQueue::new(16);
        q.try_push(7).unwrap();
        q.close();
        match q.try_push(8) {
            Err(PushError::Closed(8)) => {}
            other => panic!("expected Closed(8), got {other:?}"),
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(64, Duration::ZERO, &mut out));
        assert_eq!(out, vec![7]);
        assert!(!q.pop_batch(64, Duration::ZERO, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn linger_accumulates_a_batch_from_a_trickle() {
        let q = Arc::new(BatchQueue::new(64));
        let producer = Arc::clone(&q);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..8 {
                    producer.try_push(i).unwrap();
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
            let mut out = Vec::new();
            let mut total = 0;
            let mut pops = 0;
            while total < 8 {
                assert!(q.pop_batch(8, Duration::from_millis(100), &mut out));
                total += out.len();
                pops += 1;
            }
            // The 100 ms linger should have glued the 1 ms trickle into far
            // fewer batches than items (usually exactly one).
            assert!(pops <= 4, "{pops} pops for 8 items");
        });
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q = Arc::new(BatchQueue::<u32>::new(4));
        let closer = Arc::clone(&q);
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                closer.close();
            });
            let mut out = Vec::new();
            // Blocks on empty, then the close wakes it with `false`.
            assert!(!q.pop_batch(8, Duration::from_secs(10), &mut out));
        });
    }
}
