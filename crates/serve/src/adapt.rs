//! The background adaptation worker.
//!
//! A serving deployment keeps two copies of the model: the frozen
//! [`ModelSnapshot`] the workers answer from, and a private copy this
//! worker retrains. Arrived queries stream into a bounded inbox
//! ([`AdaptWorker::observe`] — never blocking the serving path; a full
//! inbox drops the *observation*, never the request). Once `invoke_every`
//! observations accumulate (or `max_wait` elapses with at least one), the
//! worker runs one supervised adaptation step — checkpoint → invoke →
//! validate → commit or roll back — and, only on the commit path, snapshots
//! the updated model and publishes it to the [`SnapshotCell`]. Rolled-back
//! steps publish nothing: the serving side keeps answering from the last
//! good generation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use warper_ce::{CardinalityEstimator, Precision};
use warper_core::detect::{CanarySet, DataTelemetry};
use warper_core::{
    derive_seed, seed_stream, ArrivedQuery, CommitHook, FeatureMap, Supervisor, SupervisorConfig,
    WarperController,
};
use warper_durable::DurableStore;
use warper_query::{Annotator, RangePredicate};
use warper_storage::drift::ChangeLog;
use warper_storage::Table;

use crate::queue::BatchQueue;
use crate::snapshot::{ModelSnapshot, SnapshotCell};

/// Durably log labeled arrivals before an invocation consumes them.
/// Best-effort: a failed append keeps the label usable in memory — it is
/// simply not crash-protected (and is counted in the store's stats).
pub(crate) fn log_labeled_arrivals(store: &Mutex<DurableStore>, arrived: &[ArrivedQuery]) {
    let mut s = store.lock().unwrap_or_else(PoisonError::into_inner);
    for q in arrived {
        if let Some(gt) = q.gt {
            let _ = s.append_label(&q.features, gt, true);
        }
    }
}

/// Durably log the labels an annotation round produced.
pub(crate) fn log_annotations(
    store: &Mutex<DurableStore>,
    feats: &[Vec<f64>],
    labels: &[Option<f64>],
) {
    let mut s = store.lock().unwrap_or_else(PoisonError::into_inner);
    for (f, l) in feats.iter().zip(labels) {
        if let Some(gt) = l {
            let _ = s.append_label(f, *gt, false);
        }
    }
}

/// Adaptation-loop knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdaptConfig {
    /// Supervisor policy for the checkpoint/validate/commit cycle.
    pub supervisor: SupervisorConfig,
    /// Observations per invocation (n_t): the worker batches this many
    /// arrivals into one adaptation step.
    pub invoke_every: usize,
    /// Invoke with a partial batch after this long with ≥ 1 observation
    /// queued (bounds staleness under a trickle of arrivals).
    pub max_wait: Duration,
    /// Inbox bound; observations beyond it are dropped, not queued.
    pub inbox_capacity: usize,
    /// Canary predicates for data-drift telemetry.
    pub canaries: usize,
    /// Master seed (the worker draws from its [`seed_stream::ADAPT`]
    /// stream).
    pub seed: u64,
    /// Serving precision requested for published snapshots. Quantized
    /// copies are admitted per commit only after the GMQ drift gate
    /// (`crate::quant`, budget `supervisor.quant_gmq_tolerance`) passes;
    /// otherwise the f64 model serves.
    pub precision: Precision,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            supervisor: SupervisorConfig::default(),
            invoke_every: 40,
            max_wait: Duration::from_millis(50),
            inbox_capacity: 4096,
            canaries: 8,
            seed: 7,
            precision: Precision::F32,
        }
    }
}

/// What the worker did over its lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptStats {
    /// Supervised invocations run.
    pub invocations: usize,
    /// Invocations that committed.
    pub commits: usize,
    /// Invocations rolled back to their checkpoint.
    pub rollbacks: usize,
    /// Snapshots published to the cell (= commits unless the model cannot
    /// snapshot or a committed state failed re-validation).
    pub published: usize,
    /// Committed steps that could not be published.
    pub publish_failures: usize,
    /// Commits whose quantized serving copy failed the GMQ drift gate and
    /// fell back to f64 (the commit itself still published).
    pub quant_refusals: usize,
    /// Observations dropped by the full inbox.
    pub dropped_observations: usize,
    /// Queries annotated by the adaptation loop.
    pub annotated: usize,
    /// Synthetic queries generated.
    pub generated: usize,
    /// Wall-clock seconds inside supervised invocations.
    pub adapt_secs: f64,
}

/// Handle to the running worker thread.
pub struct AdaptWorker {
    inbox: Arc<BatchQueue<ArrivedQuery>>,
    dropped: Arc<AtomicUsize>,
    handle: JoinHandle<AdaptStats>,
}

impl AdaptWorker {
    /// Spawns the worker. `ctl` and `model` are the adaptation-side copies;
    /// committed updates are snapshotted into `cell`. The worker reads
    /// `table` (telemetry + annotation) under short-lived read locks, so a
    /// drift mutator holding the write lock never waits on a whole
    /// retraining step.
    pub fn spawn(
        ctl: WarperController,
        model: Box<dyn CardinalityEstimator>,
        cell: Arc<SnapshotCell<ModelSnapshot>>,
        table: Arc<RwLock<Table>>,
        fmap: FeatureMap,
        cfg: AdaptConfig,
    ) -> Self {
        Self::spawn_with_store(ctl, model, cell, table, fmap, cfg, None)
    }

    /// [`AdaptWorker::spawn`] with a durable store: annotation labels are
    /// write-ahead logged as they are paid for, and every committed
    /// invocation counts toward the store's checkpoint cadence.
    pub fn spawn_with_store(
        ctl: WarperController,
        model: Box<dyn CardinalityEstimator>,
        cell: Arc<SnapshotCell<ModelSnapshot>>,
        table: Arc<RwLock<Table>>,
        fmap: FeatureMap,
        cfg: AdaptConfig,
        store: Option<Arc<Mutex<DurableStore>>>,
    ) -> Self {
        let inbox = Arc::new(BatchQueue::new(cfg.inbox_capacity.max(1)));
        let dropped = Arc::new(AtomicUsize::new(0));
        let worker_inbox = Arc::clone(&inbox);
        let worker_dropped = Arc::clone(&dropped);
        let handle = std::thread::Builder::new()
            .name("serve-adapt".into())
            .spawn(move || {
                worker_main(
                    ctl,
                    model,
                    cell,
                    table,
                    fmap,
                    cfg,
                    worker_inbox,
                    worker_dropped,
                    store,
                )
            })
            .expect("spawn adaptation worker");
        Self {
            inbox,
            dropped,
            handle,
        }
    }

    /// Feeds one arrived query to the loop. Never blocks: a full inbox
    /// drops the observation and the serving path moves on.
    pub fn observe(&self, q: ArrivedQuery) {
        if self.inbox.try_push(q).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Closes the inbox, lets the worker drain it, and returns its stats.
    pub fn finish(self) -> AdaptStats {
        self.inbox.close();
        match self.handle.join() {
            Ok(stats) => stats,
            Err(e) => std::panic::resume_unwind(e),
        }
    }
}

/// Builds the publication hook: on every commit, snapshot the model,
/// quantize-and-gate the serving copy at the requested precision,
/// re-validate the controller state, and swap the cell. Durability always
/// receives the full f64 model — quantization is serving-only.
fn publish_hook(
    cell: Arc<SnapshotCell<ModelSnapshot>>,
    published: Arc<AtomicUsize>,
    failures: Arc<AtomicUsize>,
    quant_refusals: Arc<AtomicUsize>,
    store: Option<Arc<Mutex<DurableStore>>>,
    precision: Precision,
    quant_tolerance: f64,
) -> CommitHook {
    Box::new(move |state, model| {
        let next_gen = cell.version() + 1;
        let ok = model
            .snapshot()
            .and_then(|full| {
                let probes = crate::quant::probe_features(state);
                let refs: Vec<&[f64]> = probes.iter().map(Vec::as_slice).collect();
                let (serving, served, outcome) = crate::quant::prepare_serving_model(
                    model,
                    full,
                    precision,
                    &refs,
                    quant_tolerance,
                );
                if matches!(outcome, crate::quant::QuantOutcome::Refused(_)) {
                    quant_refusals.fetch_add(1, Ordering::Relaxed);
                }
                ModelSnapshot::committed(next_gen, serving, state)
                    .ok()
                    .map(|snap| snap.with_precision(served))
            })
            .map(|snap| cell.publish(snap));
        match ok {
            Some(_) => published.fetch_add(1, Ordering::Relaxed),
            None => failures.fetch_add(1, Ordering::Relaxed),
        };
        if let Some(store) = &store {
            let mut s = store.lock().unwrap_or_else(PoisonError::into_inner);
            // A failed checkpoint is retried at the next commit; the WAL
            // keeps every acked label durable in the meantime.
            let _ = s.note_commit(state, Some(model));
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn worker_main(
    mut ctl: WarperController,
    mut model: Box<dyn CardinalityEstimator>,
    cell: Arc<SnapshotCell<ModelSnapshot>>,
    table: Arc<RwLock<Table>>,
    fmap: FeatureMap,
    cfg: AdaptConfig,
    inbox: Arc<BatchQueue<ArrivedQuery>>,
    dropped: Arc<AtomicUsize>,
    store: Option<Arc<Mutex<DurableStore>>>,
) -> AdaptStats {
    let published = Arc::new(AtomicUsize::new(0));
    let publish_failures = Arc::new(AtomicUsize::new(0));
    let quant_refusals = Arc::new(AtomicUsize::new(0));
    let mut sup = Supervisor::new(cfg.supervisor).with_commit_hook(publish_hook(
        Arc::clone(&cell),
        Arc::clone(&published),
        Arc::clone(&publish_failures),
        Arc::clone(&quant_refusals),
        store.clone(),
        cfg.precision,
        cfg.supervisor.quant_gmq_tolerance,
    ));

    let annotator = Annotator::new();
    let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, seed_stream::ADAPT));
    // Telemetry baselines against the table as it stands at spawn.
    let (changelog, mut canaries) = {
        let t = table.read().unwrap_or_else(PoisonError::into_inner);
        (
            ChangeLog::mark(&t),
            CanarySet::new(&t, cfg.canaries, &mut rng),
        )
    };

    let mut stats = AdaptStats::default();
    let mut batch: Vec<ArrivedQuery> = Vec::new();
    while inbox.pop_batch(cfg.invoke_every.max(1), cfg.max_wait, &mut batch) {
        let telemetry = {
            let t = table.read().unwrap_or_else(PoisonError::into_inner);
            DataTelemetry {
                changed_fraction: changelog.changed_fraction(&t),
                canary_max_change: canaries.max_relative_change(&t),
            }
        };
        let mut annotate = |qs: &[Vec<f64>]| -> Vec<Option<f64>> {
            let preds: Vec<RangePredicate> = qs.iter().map(|f| fmap.defeaturize(f)).collect();
            let labels: Vec<Option<f64>> = {
                let t = table.read().unwrap_or_else(PoisonError::into_inner);
                annotator
                    .count_batch(&t, &preds)
                    .into_iter()
                    .map(|c| Some(c as f64))
                    .collect()
            };
            if let Some(store) = &store {
                log_annotations(store, qs, &labels);
            }
            labels
        };
        if let Some(store) = &store {
            log_labeled_arrivals(store, &batch);
        }
        let t0 = Instant::now();
        let report = sup.invoke(&mut ctl, model.as_mut(), &batch, &telemetry, &mut annotate);
        stats.adapt_secs += t0.elapsed().as_secs_f64();
        stats.invocations += 1;
        stats.annotated += report.annotated;
        stats.generated += report.generated;
        if report.rollback.is_some() {
            stats.rollbacks += 1;
        } else {
            stats.commits += 1;
        }
    }
    // Fully handled whatever drift occurred; canaries could rebaseline for a
    // successor worker (informative only — this worker is exiting).
    {
        let t = table.read().unwrap_or_else(PoisonError::into_inner);
        canaries.rebaseline(&t);
    }
    stats.published = published.load(Ordering::Relaxed);
    stats.publish_failures = publish_failures.load(Ordering::Relaxed);
    stats.quant_refusals = quant_refusals.load(Ordering::Relaxed);
    stats.dropped_observations = dropped.load(Ordering::Relaxed);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use warper_core::runner::ModelKind;
    use warper_core::{prepare_single_table, WarperConfig};
    use warper_storage::{generate, DatasetKind};
    use warper_workload::QueryGenerator;

    fn small_warper_cfg() -> WarperConfig {
        WarperConfig {
            embed_dim: 6,
            hidden: 24,
            n_i: 5,
            pretrain_epochs: 2,
            gamma: 80,
            n_p: 40,
            ..Default::default()
        }
    }

    #[test]
    fn worker_publishes_only_committed_generations() {
        let table = generate(DatasetKind::Prsa, 2_000, 5);
        let prepared = prepare_single_table(&table, "w1", ModelKind::LmMlp, 250, 11).unwrap();
        let ctl = WarperController::new(
            prepared.fmap.dim(),
            &prepared.training_set,
            prepared.baseline_gmq,
            small_warper_cfg(),
            derive_seed(11, seed_stream::STRATEGY),
        )
        .with_canonicalizer(prepared.fmap.make_canonicalizer());

        let serving = prepared.model.snapshot().expect("LmMlp snapshots");
        let cell = Arc::new(SnapshotCell::new(ModelSnapshot::initial(serving)));
        let shared = Arc::new(RwLock::new(table.clone()));
        let worker = AdaptWorker::spawn(
            ctl,
            prepared.model,
            Arc::clone(&cell),
            shared,
            prepared.fmap.clone(),
            AdaptConfig {
                invoke_every: 30,
                max_wait: Duration::from_millis(5),
                seed: 11,
                ..Default::default()
            },
        );

        // Feed two invocations' worth of drifted-workload arrivals.
        let mut rng = StdRng::seed_from_u64(3);
        let mut gen = QueryGenerator::try_from_notation(&table, "w4").unwrap();
        for p in gen.generate_many(60, &mut rng) {
            worker.observe(ArrivedQuery {
                features: prepared.fmap.featurize(&p),
                gt: Some(rng.random_range(1.0..500.0)),
            });
        }
        let stats = worker.finish();
        assert!(stats.invocations >= 1, "{stats:?}");
        assert_eq!(stats.invocations, stats.commits + stats.rollbacks);
        assert_eq!(stats.published + stats.publish_failures, stats.commits);
        assert_eq!(stats.publish_failures, 0, "LmMlp snapshots must publish");
        // The cell advanced exactly once per published commit, and the
        // published model answers.
        assert_eq!(cell.version(), stats.published as u64);
        let (v, snap) = cell.load();
        assert_eq!(snap.generation, v);
        let q = vec![0.5; snap.model.feature_dim()];
        assert!(snap.model.estimate(&q).is_finite());
        assert_eq!(stats.dropped_observations, 0);
    }

    #[test]
    fn full_inbox_drops_observations_instead_of_blocking() {
        let table = generate(DatasetKind::Prsa, 1_200, 6);
        let prepared = prepare_single_table(&table, "w1", ModelKind::LmMlp, 150, 5).unwrap();
        let ctl = WarperController::new(
            prepared.fmap.dim(),
            &prepared.training_set,
            prepared.baseline_gmq,
            small_warper_cfg(),
            derive_seed(5, seed_stream::STRATEGY),
        );
        let serving = prepared.model.snapshot().expect("LmMlp snapshots");
        let cell = Arc::new(SnapshotCell::new(ModelSnapshot::initial(serving)));
        let shared = Arc::new(RwLock::new(table.clone()));
        let worker = AdaptWorker::spawn(
            ctl,
            prepared.model,
            cell,
            shared,
            prepared.fmap.clone(),
            AdaptConfig {
                invoke_every: 1_000_000, // never invoke: everything queues
                max_wait: Duration::from_secs(60),
                inbox_capacity: 8,
                seed: 5,
                ..Default::default()
            },
        );
        let dim = prepared.fmap.dim();
        let t0 = Instant::now();
        for i in 0..100 {
            worker.observe(ArrivedQuery {
                features: vec![(i % 7) as f64; dim],
                gt: None,
            });
        }
        // 92 drops, zero waiting.
        assert!(t0.elapsed() < Duration::from_secs(5));
        let stats = worker.finish();
        assert_eq!(stats.dropped_observations, 92);
    }
}
