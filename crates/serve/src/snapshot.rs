//! Hot-swappable model snapshots.
//!
//! The serving workers answer every request from an immutable
//! [`ModelSnapshot`] while the adaptation loop retrains a private copy of
//! the model in the background. Publication is a version bump on a
//! [`SnapshotCell`]: readers keep serving the `Arc` they already hold until
//! they notice the new version, so a swap never blocks an in-flight
//! estimate and a reader can never observe a half-written model.
//!
//! The cell is deliberately built from `std` primitives only (one atomic,
//! one mutex): the fast path — the version check every request performs —
//! is a single `Acquire` load, and the mutex is touched only on publish and
//! on the first read after a publish.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use warper_ce::{CardinalityEstimator, Precision};
use warper_core::{WarperError, WarperState};

/// A single-publisher, many-reader cell holding the current snapshot.
///
/// Writers go through [`SnapshotCell::publish`]; readers either call
/// [`SnapshotCell::load`] directly or, on hot paths, cache the `Arc` in a
/// [`SnapshotReader`] and revalidate it with one atomic load per access.
pub struct SnapshotCell<T> {
    /// Published version, bumped *after* the slot holds the new value
    /// (`Release`); readers pair it with an `Acquire` load so a version
    /// observation implies visibility of the slot update.
    version: AtomicU64,
    slot: Mutex<(u64, Arc<T>)>,
}

impl<T> SnapshotCell<T> {
    /// A cell serving `initial` as version 0.
    pub fn new(initial: T) -> Self {
        Self {
            version: AtomicU64::new(0),
            slot: Mutex::new((0, Arc::new(initial))),
        }
    }

    /// The currently published version.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Publishes `value`, returning its version. Single-publisher: the
    /// adaptation worker is the only writer, so versions are dense.
    pub fn publish(&self, value: T) -> u64 {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        let next = slot.0 + 1;
        *slot = (next, Arc::new(value));
        // Bump only after the slot holds the new value; readers that see
        // `next` are guaranteed to load the new Arc.
        self.version.store(next, Ordering::Release);
        next
    }

    /// The current `(version, snapshot)` pair.
    pub fn load(&self) -> (u64, Arc<T>) {
        let slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        (slot.0, Arc::clone(&slot.1))
    }
}

/// A reader-side cache over a [`SnapshotCell`]: the common case (no publish
/// since the last access) costs one atomic load and returns the cached
/// `Arc` without touching the mutex.
pub struct SnapshotReader<T> {
    cell: Arc<SnapshotCell<T>>,
    seen: u64,
    cached: Arc<T>,
}

impl<T> SnapshotReader<T> {
    /// A reader over `cell`, primed with the current snapshot.
    pub fn new(cell: Arc<SnapshotCell<T>>) -> Self {
        let (seen, cached) = cell.load();
        Self { cell, seen, cached }
    }

    /// The current snapshot and its version, revalidating the cache with a
    /// single atomic load.
    pub fn current(&mut self) -> (u64, &Arc<T>) {
        let v = self.cell.version.load(Ordering::Acquire);
        if v != self.seen {
            let (seen, cached) = self.cell.load();
            self.seen = seen;
            self.cached = cached;
        }
        (self.seen, &self.cached)
    }
}

/// What the serving workers answer from: an immutable, validated model
/// behind a generation number.
pub struct ModelSnapshot {
    /// Publication generation (0 = the offline-trained initial model).
    pub generation: u64,
    /// The frozen model.
    pub model: Box<dyn CardinalityEstimator>,
    /// Numeric precision `model` serves at. [`Precision::F64`] unless a
    /// quantized copy passed the GMQ drift gate (see `crate::quant`).
    pub precision: Precision,
}

impl ModelSnapshot {
    /// The initial snapshot a service starts from (generation 0, the
    /// offline-trained model).
    pub fn initial(model: Box<dyn CardinalityEstimator>) -> Self {
        Self {
            generation: 0,
            model,
            precision: Precision::F64,
        }
    }

    /// A snapshot of a *committed* adaptation step. The controller state is
    /// re-validated here so nothing structurally inconsistent can be
    /// published even if a caller bypasses the supervisor.
    pub fn committed(
        generation: u64,
        model: Box<dyn CardinalityEstimator>,
        state: &WarperState,
    ) -> Result<Self, WarperError> {
        state.validate()?;
        Ok(Self {
            generation,
            model,
            precision: Precision::F64,
        })
    }

    /// Tags the snapshot with the precision its model serves at.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_version_and_readers_catch_up() {
        let cell = Arc::new(SnapshotCell::new(10u32));
        let mut reader = SnapshotReader::new(Arc::clone(&cell));
        assert_eq!(cell.version(), 0);
        let (v, snap) = reader.current();
        assert_eq!((v, **snap), (0, 10));

        assert_eq!(cell.publish(11), 1);
        assert_eq!(cell.publish(12), 2);
        assert_eq!(cell.version(), 2);
        let (v, snap) = reader.current();
        assert_eq!((v, **snap), (2, 12));
    }

    #[test]
    fn reader_cache_survives_no_publish() {
        let cell = Arc::new(SnapshotCell::new(String::from("a")));
        let mut reader = SnapshotReader::new(Arc::clone(&cell));
        let first = Arc::as_ptr(reader.current().1);
        // No publish in between: the very same Arc comes back.
        assert_eq!(Arc::as_ptr(reader.current().1), first);
    }

    #[test]
    fn concurrent_readers_always_see_a_consistent_pair() {
        // The (version, value) pair must swap atomically: with values equal
        // to their versions, any mismatch is a torn read.
        let cell = Arc::new(SnapshotCell::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    let mut reader = SnapshotReader::new(cell);
                    for _ in 0..20_000 {
                        let (v, snap) = reader.current();
                        assert_eq!(v, **snap);
                    }
                });
            }
            for i in 1..=500u64 {
                cell.publish(i);
            }
        });
        assert_eq!(cell.version(), 500);
    }
}
