//! The serving layer: a concurrent cardinality-estimation service with
//! hot-swappable model snapshots and an online adaptation loop.
//!
//! The paper evaluates Warper as an offline replay; a deployment has to
//! answer estimation requests *while* adapting. This crate closes that gap
//! with four pieces, all plain `std` threads (no async runtime):
//!
//! * [`snapshot`] — epoch-style publication: workers answer from an
//!   immutable [`ModelSnapshot`] behind a [`SnapshotCell`]; the adaptation
//!   loop publishes a new generation with one atomic version bump, and
//!   readers revalidate their cached `Arc` with a single `Acquire` load.
//! * [`queue`] — the bounded micro-batching request queue: producers shed
//!   instead of blocking (admission control), consumers linger briefly to
//!   accumulate a batch for the model's one-GEMM-per-layer
//!   `estimate_many` path.
//! * [`service`] — the worker pool gluing the two together, with per-request
//!   response slots and lock-free counters.
//! * [`adapt`] — the background worker running the supervised checkpoint →
//!   invoke → validate → commit cycle; only *committed* steps are ever
//!   published (the supervisor's commit hook is the single publication
//!   point), so a rolled-back update can never serve a request.
//! * [`quant`] — the dual-precision publication gate (DESIGN.md §10):
//!   every publication quantizes the validated f64 model's serving copy
//!   (f32 or int8 SIMD microkernels) and admits it only if its GMQ drift
//!   vs the full model stays inside budget, falling back to f64 otherwise;
//!   training, checkpoints, and the WAL stay f64 throughout.
//!
//! * [`net`] — the networked front-end and replicated durability:
//!   a length-prefixed CRC-framed binary protocol over a `ByteStream` seam
//!   (TCP, in-memory pipes, or fault injection), streaming WAL/checkpoint
//!   shipping to a warm standby that validates everything before install
//!   and promotes only through the full recovery path, and a bounded-retry
//!   client that can fail but never hang (DESIGN.md §11).
//!
//! [`replay`] is the measurement harness over all of it: pre-generated
//! query streams, mid-run drift events, per-client latency histograms, and
//! an order-independent estimate checksum that makes replays comparable
//! bit-for-bit (see its module docs for the determinism argument). With
//! [`replay::DurableReplay`] configured, the harness is also crash-safe:
//! annotation labels are write-ahead logged, supervisor commits drive
//! atomic checkpoints (via `warper-durable`), and a restarted replay over
//! the same state directory resumes the controller, pool, and serving
//! model with zero acknowledged-label loss.

pub mod adapt;
pub mod net;
pub mod quant;
pub mod queue;
pub mod replay;
pub mod service;
pub mod snapshot;

pub use adapt::{AdaptConfig, AdaptStats, AdaptWorker};
pub use net::{
    AckLevel, AckMode, EstimateClient, NetError, NetLoadReport, NetLoadSpec, NetServer,
    NetServerConfig, PrimaryNode, PrimarySpec, ReplHub, ReplicatedStore, RetryPolicy,
    StandbyApplier, StandbyConfig, StandbyNode,
};
pub use quant::{gate_and_choose, prepare_serving_model, probe_features, QuantOutcome};
pub use queue::{BatchQueue, PushError};
pub use replay::{
    run_replay, AdaptMode, DriftEvent, DriftKind, DurabilityReport, DurableReplay, ReplayReport,
    ReplaySpec,
};
pub use service::{
    Estimate, EstimationService, ServeError, ServiceConfig, ServiceHandle, ServiceStats,
};
pub use snapshot::{ModelSnapshot, SnapshotCell, SnapshotReader};
pub use warper_ce::Precision;
