//! The network front-end: a pure-std wire protocol over TCP, replicated
//! durability, and deterministic link-fault injection.
//!
//! Layering, bottom up (DESIGN.md §11):
//!
//! * [`conn`] — the [`conn::ByteStream`] transport trait with three
//!   implementations: real TCP sockets ([`tcp`], the only module allowed
//!   to open raw sockets), an in-memory duplex pipe for deterministic
//!   tests, and [`conn::FailpointNet`], the link-fault injector mirroring
//!   `FailpointVfs` (cut / delay / torn write / garbage at op N). On top
//!   sits [`conn::FrameConn`], the length-prefixed CRC32 framing shared
//!   with the durability layer — a frame's length field is validated
//!   against [`codec::MAX_NET_FRAME`] *before* any allocation.
//! * [`codec`] — the v1 binary message set: estimate request/response,
//!   typed backpressure (`Shed`, `Rejected`, `Unavailable`), and the
//!   replication stream (`Repl`/`ReplAck`). Decoding arbitrary bytes
//!   yields typed errors, never panics.
//! * [`server`] — the connection handler: per-connection read/write
//!   deadlines, `BatchQueue` shed mapped directly to a `Shed` wire
//!   response (no unbounded buffering anywhere on the path), and the
//!   per-standby replication shipper.
//! * [`client`] — the reconnecting client: bounded retry with exponential
//!   backoff + deterministic jitter, endpoint rotation on failover, and a
//!   per-call deadline so no call ever hangs.
//! * [`repl`] — primary-side [`repl::ReplHub`] (ship log + ack watermark +
//!   measured replication lag) and standby-side [`repl::StandbyApplier`]
//!   (validate-then-install, promotion through the PR 5 recovery path).
//! * [`node`] — process-level assembly: [`node::PrimaryNode`],
//!   [`node::StandbyNode`], and the deterministic network load generator.

pub mod client;
pub mod codec;
pub mod conn;
pub mod node;
pub mod repl;
pub mod server;
pub mod tcp;

use std::fmt;

/// Why a network operation failed. Every transport and framing failure is
/// one of these — the protocol surface has no panic path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The link died: reset, EOF mid-frame, or an injected cut.
    Cut(String),
    /// A read or write missed its deadline.
    TimedOut,
    /// Bytes on the wire failed framing or decoding (bad length, bad
    /// checksum, unknown tag, trailing garbage).
    Corrupt(&'static str),
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// Any other transport error.
    Io(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Cut(msg) => write!(f, "connection cut: {msg}"),
            NetError::TimedOut => write!(f, "deadline exceeded"),
            NetError::Corrupt(msg) => write!(f, "wire corruption: {msg}"),
            NetError::Closed => write!(f, "connection closed"),
            NetError::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

pub use client::{ClientError, ClientStats, Dialer, EstimateClient, RetryPolicy};
pub use codec::{decode, encode, Msg, Refusal, Role, MAX_NET_FRAME, NET_PROTO};
pub use conn::{
    mem_pair, ByteStream, FailpointNet, FrameConn, MemStream, NetFailPlan, NetFaultKind,
};
pub use node::{
    run_net_loadgen, NetLoadReport, NetLoadSpec, PrimaryNode, PrimaryReport, PrimarySpec,
    StandbyConfig, StandbyNode, StandbyReport, StandbyState,
};
pub use repl::{
    AckLevel, AckMode, ReplHub, ReplHubStats, ReplLag, ReplicatedStore, StandbyApplier,
    StandbyStats,
};
pub use server::{serve_connection, NetServer, NetServerConfig, NetStats, ServerCore};
pub use tcp::TcpDialer;
