//! Node orchestration: a serving **primary** (trained model, adaptation
//! loop, replicated durability, TCP front-end), a warm **standby**
//! (subscribes to the primary's replication stream, validates and installs
//! every shipped mutation, promotes through full recovery when the primary
//! dies), and [`run_net_loadgen`] — the deterministic multi-client load
//! generator the failover bench and the CLI drive.
//!
//! Failover state machine (DESIGN.md §11):
//!
//! ```text
//!   standby: Subscribing ──validated ckpt──▶ Warm ──link lost──▶ Promoting
//!                ▲                             │                    │
//!                └────────── reconnect ────────┘        recovery OK │
//!                                                                   ▼
//!                                                               Serving
//! ```
//!
//! Until `Serving`, the standby's front-end answers every estimate with
//! `Unavailable { NotPrimary }` — a typed refusal the client reacts to by
//! rotating endpoints — and promotion runs the full PR 5 recovery path, so
//! an unvalidated or torn-tail model can never be served.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use warper_ce::{CardinalityEstimator, LabeledExample, UpdateKind};
use warper_core::runner::ModelKind;
use warper_core::{
    derive_seed, prepare_single_table, seed_stream, ArrivedQuery, FeatureMap, WarperConfig,
    WarperController, WarperError,
};
use warper_durable::{DurabilityConfig, DurabilityError, RecoveryReport, Vfs};
use warper_metrics::LatencyHistogram;
use warper_storage::Table;
use warper_workload::QueryGenerator;

use super::client::{ClientError, ClientStats, EstimateClient, RetryPolicy};
use super::codec::{Msg, Role, NET_PROTO};
use super::conn::FrameConn;
use super::repl::{
    AckLevel, AckMode, ReplHub, ReplHubStats, ReplLag, ReplicatedStore, StandbyApplier,
    StandbyStats,
};
use super::server::{NetServer, NetServerConfig, NetStats, ServerCore};
use super::tcp::{dial, TcpDialer};
use crate::adapt::{AdaptConfig, AdaptStats, AdaptWorker};
use crate::service::{EstimationService, ServiceConfig, ServiceHandle, ServiceStats};
use crate::snapshot::{ModelSnapshot, SnapshotCell};

/// Everything a primary needs beyond the table and the state directory.
#[derive(Debug, Clone)]
pub struct PrimarySpec {
    /// Training workload notation (e.g. `"w1"`).
    pub mix: String,
    /// CE model family.
    pub model: ModelKind,
    /// Offline training queries.
    pub n_train: usize,
    /// Master seed; adaptation and loadgen streams derive from it.
    pub seed: u64,
    /// Warper controller shape.
    pub warper: WarperConfig,
    /// Background adaptation knobs (its `seed` is overwritten with ours).
    pub adapt: AdaptConfig,
    /// Checkpoint cadence for the durable store.
    pub durability: DurabilityConfig,
    /// Estimation worker-pool shape.
    pub service: ServiceConfig,
    /// Per-connection deadlines.
    pub net: NetServerConfig,
    /// How long a [`AckMode::Replicated`] append waits for the standby.
    pub ack_timeout: Duration,
}

impl Default for PrimarySpec {
    fn default() -> Self {
        Self {
            mix: "w1".into(),
            model: ModelKind::LmMlp,
            n_train: 250,
            seed: 11,
            // Modest controller: nodes exist to exercise serving and
            // failover, not to reproduce paper accuracy numbers.
            warper: WarperConfig {
                embed_dim: 6,
                hidden: 24,
                n_i: 5,
                pretrain_epochs: 2,
                gamma: 80,
                n_p: 40,
                ..Default::default()
            },
            adapt: AdaptConfig::default(),
            durability: DurabilityConfig::default(),
            service: ServiceConfig::default(),
            net: NetServerConfig::default(),
            ack_timeout: Duration::from_secs(2),
        }
    }
}

/// Final counters from a primary's lifetime.
#[derive(Debug, Clone)]
pub struct PrimaryReport {
    /// Network front-end counters.
    pub net: NetStats,
    /// Estimation service counters.
    pub service: ServiceStats,
    /// Adaptation-loop stats.
    pub adapt: AdaptStats,
    /// Replication hub counters.
    pub repl: ReplHubStats,
    /// Replication lag at shutdown.
    pub lag: ReplLag,
}

/// A serving primary: trained model, adaptation worker, replicated durable
/// store, and the TCP front-end, wired exactly like the in-process replay
/// harness (`crate::replay`) plus the network and replication layers.
pub struct PrimaryNode {
    server: Option<NetServer>,
    service: Option<EstimationService>,
    adapt: Option<AdaptWorker>,
    repl: ReplicatedStore,
    hub: Arc<ReplHub>,
    fmap: FeatureMap,
    addr: String,
}

impl PrimaryNode {
    /// Train, recover (if `vfs` holds a prior image), checkpoint, and
    /// start serving on `listen` (use `"127.0.0.1:0"` for an OS port).
    pub fn start(
        table: &Table,
        vfs: Arc<dyn Vfs>,
        listen: &str,
        spec: PrimarySpec,
    ) -> Result<Self, WarperError> {
        let durable_err =
            |e: warper_durable::DurabilityError| WarperError::InvalidState(format!("durable: {e}"));
        let net_err = |e: super::NetError| WarperError::InvalidState(format!("net: {e}"));

        let prepared = prepare_single_table(table, &spec.mix, spec.model, spec.n_train, spec.seed)?;
        let fmap = prepared.fmap.clone();

        // Recover a prior image when the directory has one; otherwise the
        // freshly trained model serves (same policy as `run_replay`).
        let (store, recovered) =
            warper_durable::DurableStore::open(vfs, spec.durability).map_err(durable_err)?;
        let mut recovered_state = None;
        let mut recovered_model = None;
        if let Some(rec) = recovered {
            recovered_state = Some(rec.state);
            recovered_model = rec.model;
        }
        let adapt_model: Box<dyn CardinalityEstimator> = match recovered_model {
            Some(m) if m.feature_dim() == fmap.dim() => m,
            _ => prepared.model,
        };
        let ctl = match recovered_state {
            Some(state) => {
                WarperController::from_state(state)?.with_canonicalizer(fmap.make_canonicalizer())
            }
            None => WarperController::new(
                fmap.dim(),
                &prepared.training_set,
                prepared.baseline_gmq,
                spec.warper,
                derive_seed(spec.seed, seed_stream::STRATEGY),
            )
            .with_canonicalizer(fmap.make_canonicalizer()),
        };
        let serving = adapt_model.snapshot().ok_or_else(|| {
            WarperError::InvalidState(format!(
                "{} cannot snapshot; serving requires an immutable copy",
                adapt_model.name()
            ))
        })?;
        let cell = Arc::new(SnapshotCell::new(ModelSnapshot::initial(serving)));

        // Replication: hub tap first, then a startup checkpoint, so the
        // oldest entry a subscribing standby can fetch is a full snapshot.
        let hub = Arc::new(ReplHub::new());
        let repl = ReplicatedStore::new(store, Arc::clone(&hub), spec.ack_timeout);
        {
            let mut s = repl.store.lock().unwrap_or_else(PoisonError::into_inner);
            s.checkpoint(&ctl.to_state(), Some(adapt_model.as_ref()))
                .map_err(durable_err)?;
        }

        let shared = Arc::new(RwLock::new(table.clone()));
        let adapt_cfg = AdaptConfig {
            seed: spec.seed,
            ..spec.adapt
        };
        let adapt = AdaptWorker::spawn_with_store(
            ctl,
            adapt_model,
            Arc::clone(&cell),
            shared,
            fmap.clone(),
            adapt_cfg,
            Some(Arc::clone(&repl.store)),
        );
        let service = EstimationService::start(Arc::clone(&cell), spec.service);
        let core = ServerCore::new(service.handle(), true, Some(Arc::clone(&hub)));
        let server = NetServer::bind(listen, core, spec.net).map_err(net_err)?;
        let addr = server.local_addr().to_string();
        Ok(Self {
            server: Some(server),
            service: Some(service),
            adapt: Some(adapt),
            repl,
            hub,
            fmap,
            addr,
        })
    }

    /// The bound address (real port).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Predicate ↔ feature mapping (loadgen featurizes against this).
    pub fn fmap(&self) -> &FeatureMap {
        &self.fmap
    }

    /// In-process submission handle (bypasses the network).
    pub fn handle(&self) -> ServiceHandle {
        self.service
            .as_ref()
            .expect("service runs until shutdown")
            .handle()
    }

    /// The replication hub (standby shippers fetch from it).
    pub fn hub(&self) -> &Arc<ReplHub> {
        &self.hub
    }

    /// Measured replication lag right now.
    pub fn lag(&self) -> ReplLag {
        self.hub.lag()
    }

    /// Feed one labeled arrival to the adaptation loop (its WAL path
    /// replicates through the store tap).
    pub fn observe(&self, features: Vec<f64>, gt: Option<f64>) {
        if let Some(adapt) = &self.adapt {
            adapt.observe(ArrivedQuery { features, gt });
        }
    }

    /// Durably log one label, optionally waiting for the standby's ack.
    pub fn append_label(
        &self,
        features: &[f64],
        gt: f64,
        mode: AckMode,
    ) -> Result<AckLevel, DurabilityError> {
        self.repl.append_label_replicated(features, gt, true, mode)
    }

    /// Stop everything — the accept loop, live connections (severed, not
    /// drained: this doubles as the crash in failover tests), adaptation,
    /// and the worker pool — and report final counters.
    pub fn shutdown(mut self) -> PrimaryReport {
        let lag = self.hub.lag();
        let net = self
            .server
            .take()
            .map(NetServer::shutdown)
            .unwrap_or_default();
        let adapt = self
            .adapt
            .take()
            .map(AdaptWorker::finish)
            .unwrap_or_default();
        let service = self
            .service
            .take()
            .map(EstimationService::shutdown)
            .unwrap_or_default();
        PrimaryReport {
            net,
            service,
            adapt,
            repl: self.hub.stats(),
            lag,
        }
    }
}

/// Standby tunables.
#[derive(Debug, Clone, Copy)]
pub struct StandbyConfig {
    /// Worker-pool shape for the (post-promotion) front-end.
    pub service: ServiceConfig,
    /// Per-connection deadlines, shared with the replication link.
    pub net: NetServerConfig,
    /// Checkpoint cadence for the promoted store.
    pub durability: DurabilityConfig,
    /// Connect timeout per dial to the primary.
    pub connect_timeout: Duration,
    /// Consecutive failed dials before the link is declared lost.
    pub reconnect_attempts: u32,
    /// Sleep between dial attempts.
    pub reconnect_backoff: Duration,
    /// Promote automatically once the link is lost and a validated
    /// checkpoint is installed. `false` keeps the node warm until
    /// [`StandbyNode::request_promotion`].
    pub auto_promote: bool,
}

impl Default for StandbyConfig {
    fn default() -> Self {
        Self {
            service: ServiceConfig::default(),
            net: NetServerConfig::default(),
            durability: DurabilityConfig::default(),
            connect_timeout: Duration::from_millis(250),
            reconnect_attempts: 4,
            reconnect_backoff: Duration::from_millis(25),
            auto_promote: true,
        }
    }
}

/// Point-in-time standby progress.
#[derive(Debug, Clone, Default)]
pub struct StandbyState {
    /// Last applied-and-fsynced ship index (the acked watermark).
    pub watermark: u64,
    /// Newest checkpoint sequence that passed validation locally.
    pub validated_seq: u64,
    /// Applier counters.
    pub stats: StandbyStats,
    /// Serving-cell generation promotion published, if it happened.
    pub promoted_generation: Option<u64>,
    /// The promotion's recovery report.
    pub promotion: Option<RecoveryReport>,
    /// Last replication-link error, for diagnostics.
    pub last_error: Option<String>,
}

/// Final counters from a standby's lifetime.
#[derive(Debug, Clone)]
pub struct StandbyReport {
    /// Network front-end counters.
    pub net: NetStats,
    /// Estimation service counters (nonzero only after promotion).
    pub service: ServiceStats,
    /// Replication progress at shutdown.
    pub state: StandbyState,
}

/// Placeholder the standby's cell holds before any validated checkpoint
/// arrives. It can never answer a request: the front-end refuses with
/// `Unavailable { NotPrimary }` until promotion flips `ServerCore`.
struct ColdModel;

impl CardinalityEstimator for ColdModel {
    fn feature_dim(&self) -> usize {
        0
    }
    fn estimate(&self, _f: &[f64]) -> f64 {
        1.0
    }
    fn fit(&mut self, _e: &[LabeledExample]) {}
    fn update(&mut self, _e: &[LabeledExample]) {}
    fn update_kind(&self) -> UpdateKind {
        UpdateKind::FineTune
    }
    fn name(&self) -> &'static str {
        "cold-standby"
    }
}

struct StandbyShared {
    inner: Mutex<StandbyState>,
    promote_req: AtomicBool,
    stop: AtomicBool,
}

/// A warm standby: replication subscriber + refusing front-end, promoting
/// (automatically on link loss, or on request) through full recovery.
pub struct StandbyNode {
    server: Option<NetServer>,
    service: Option<EstimationService>,
    core: Arc<ServerCore>,
    shared: Arc<StandbyShared>,
    repl_thread: Option<JoinHandle<()>>,
    addr: String,
}

impl StandbyNode {
    /// Start replicating from `primary` into `vfs`, refusing requests on
    /// `listen` until promoted.
    pub fn start(
        vfs: Arc<dyn Vfs>,
        listen: &str,
        primary: String,
        cfg: StandbyConfig,
    ) -> Result<Self, super::NetError> {
        let cell = Arc::new(SnapshotCell::new(ModelSnapshot::initial(Box::new(
            ColdModel,
        ))));
        let service = EstimationService::start(Arc::clone(&cell), cfg.service);
        let core = ServerCore::new(service.handle(), false, None);
        let server = NetServer::bind(listen, Arc::clone(&core), cfg.net)?;
        let addr = server.local_addr().to_string();
        let shared = Arc::new(StandbyShared {
            inner: Mutex::new(StandbyState::default()),
            promote_req: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        let repl_thread = {
            let shared = Arc::clone(&shared);
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("repl-standby".into())
                .spawn(move || standby_repl_main(vfs, cell, shared, core, primary, cfg))
                .map_err(|e| super::NetError::Io(e.to_string()))?
        };
        Ok(Self {
            server: Some(server),
            service: Some(service),
            core,
            shared,
            repl_thread: Some(repl_thread),
            addr,
        })
    }

    /// The bound address (real port).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Replication progress right now.
    pub fn state(&self) -> StandbyState {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Whether the node has been promoted and is serving.
    pub fn promoted(&self) -> bool {
        self.core.is_serving()
    }

    /// Ask the replication loop to promote at its next check (it still
    /// refuses until a validated checkpoint exists to recover from).
    pub fn request_promotion(&self) {
        self.shared.promote_req.store(true, Ordering::Release);
    }

    /// Block until promoted (polling); `false` on timeout.
    pub fn wait_promoted(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.promoted() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Stop replication and serving; report final counters.
    pub fn shutdown(mut self) -> StandbyReport {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.repl_thread.take() {
            let _ = t.join();
        }
        let net = self
            .server
            .take()
            .map(NetServer::shutdown)
            .unwrap_or_default();
        let service = self
            .service
            .take()
            .map(EstimationService::shutdown)
            .unwrap_or_default();
        StandbyReport {
            net,
            service,
            state: self
                .shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        }
    }
}

impl Drop for StandbyNode {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.repl_thread.take() {
            let _ = t.join();
        }
    }
}

/// The standby's replication loop: dial → resubscribe from the watermark →
/// validate-and-apply → ack; reconnect on any link fault; promote when the
/// link is declared lost (or on request) and a validated checkpoint exists.
fn standby_repl_main(
    vfs: Arc<dyn Vfs>,
    cell: Arc<SnapshotCell<ModelSnapshot>>,
    shared: Arc<StandbyShared>,
    core: Arc<ServerCore>,
    primary: String,
    cfg: StandbyConfig,
) {
    let mut applier = StandbyApplier::new(vfs, cell);
    let stopped = |shared: &StandbyShared| shared.stop.load(Ordering::Acquire);
    let sync_state = |shared: &StandbyShared, applier: &StandbyApplier, err: Option<String>| {
        let mut g = shared.inner.lock().unwrap_or_else(PoisonError::into_inner);
        g.watermark = applier.watermark();
        g.validated_seq = applier.validated_seq;
        g.stats = applier.stats;
        if err.is_some() {
            g.last_error = err;
        }
    };
    let promote = |applier: &mut StandbyApplier| -> bool {
        match applier.promote(cfg.durability) {
            Ok(promotion) => {
                {
                    let mut g = shared.inner.lock().unwrap_or_else(PoisonError::into_inner);
                    g.promoted_generation = Some(promotion.generation);
                    g.promotion = Some(promotion.report.clone());
                }
                // The gate: only after full recovery does the front-end
                // start answering.
                core.set_serving(true);
                true
            }
            Err(e) => {
                sync_state(&shared, applier, Some(format!("promotion failed: {e}")));
                false
            }
        }
    };

    'reconnect: while !stopped(&shared) {
        if shared.promote_req.load(Ordering::Acquire)
            && applier.promotable()
            && promote(&mut applier)
        {
            return;
        }
        // Dial with bounded attempts; exhausting them declares the link
        // lost and (optionally) triggers promotion.
        let mut stream = None;
        for _attempt in 0..cfg.reconnect_attempts.max(1) {
            if stopped(&shared) {
                return;
            }
            match dial(&primary, cfg.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => {
                    sync_state(&shared, &applier, Some(e.to_string()));
                    std::thread::sleep(cfg.reconnect_backoff);
                }
            }
        }
        let Some(mut stream) = stream else {
            let want_promote = cfg.auto_promote || shared.promote_req.load(Ordering::Acquire);
            if want_promote && applier.promotable() && promote(&mut applier) {
                return;
            }
            // Nothing validated yet (or promotion is manual): keep trying.
            continue 'reconnect;
        };
        use super::conn::ByteStream;
        if stream
            .set_read_deadline(Some(cfg.net.read_deadline))
            .and_then(|()| stream.set_write_deadline(Some(cfg.net.write_deadline)))
            .is_err()
        {
            continue 'reconnect;
        }
        let mut conn = FrameConn::new(stream);
        // Subscribe, then announce the watermark so the shipper resumes
        // after it instead of re-sending mutations we already hold.
        let subscribed = conn
            .send(&Msg::Hello {
                role: Role::Standby,
                proto: NET_PROTO,
            })
            .and_then(|()| {
                conn.send(&Msg::ReplAck {
                    watermark: applier.watermark(),
                })
            });
        if subscribed.is_err() {
            continue 'reconnect;
        }
        loop {
            if stopped(&shared) {
                return;
            }
            if shared.promote_req.load(Ordering::Acquire) && applier.promotable() {
                conn.stream().shutdown();
                if promote(&mut applier) {
                    return;
                }
            }
            match conn.recv() {
                Ok(Msg::Repl { idx, event }) => {
                    if idx <= applier.watermark() {
                        // Retransmission of something already durable here.
                        continue;
                    }
                    match applier.apply(idx, &event) {
                        Ok(()) => {
                            sync_state(&shared, &applier, None);
                            if conn
                                .send(&Msg::ReplAck {
                                    watermark: applier.watermark(),
                                })
                                .is_err()
                            {
                                continue 'reconnect;
                            }
                        }
                        Err(e) => {
                            // Validation rejected the ship: never installed,
                            // never acked. Treat the link as poisoned and
                            // resync from the watermark.
                            sync_state(&shared, &applier, Some(format!("rejected ship: {e}")));
                            conn.stream().shutdown();
                            continue 'reconnect;
                        }
                    }
                }
                Ok(_) => {
                    sync_state(&shared, &applier, Some("unexpected repl message".into()));
                    conn.stream().shutdown();
                    continue 'reconnect;
                }
                Err(e) => {
                    // Timeout, cut, or corrupt frame: any of them means the
                    // stream can no longer be trusted mid-frame — resync.
                    sync_state(&shared, &applier, Some(e.to_string()));
                    conn.stream().shutdown();
                    continue 'reconnect;
                }
            }
        }
    }
}

/// A networked load-generation run.
#[derive(Debug, Clone)]
pub struct NetLoadSpec {
    /// Server addresses, primary first; clients rotate on refusal/cut.
    pub endpoints: Vec<String>,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total queries, striped round-robin across clients.
    pub n_queries: usize,
    /// Workload notation for the pre-generated query stream.
    pub mix: String,
    /// Model family (fixes the featurization).
    pub model: ModelKind,
    /// Master seed: queries from [`seed_stream::LOADGEN`], per-client
    /// retry jitter from [`seed_stream::NET`].
    pub seed: u64,
    /// Retry/backoff policy for every client.
    pub policy: RetryPolicy,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
}

impl Default for NetLoadSpec {
    fn default() -> Self {
        Self {
            endpoints: Vec::new(),
            clients: 2,
            n_queries: 200,
            mix: "w1".into(),
            model: ModelKind::LmMlp,
            seed: 11,
            policy: RetryPolicy::default(),
            connect_timeout: Duration::from_millis(250),
        }
    }
}

/// What a networked load run measured.
#[derive(Debug, Clone)]
pub struct NetLoadReport {
    /// Queries attempted.
    pub n_queries: usize,
    /// Answered with an estimate.
    pub ok: u64,
    /// Shed by the server's admission control.
    pub shed: u64,
    /// Rejected (feature-dimension mismatch).
    pub rejected: u64,
    /// Refused everywhere (no endpoint serving) after rotation.
    pub unavailable: u64,
    /// Failed after exhausting bounded retries.
    pub disconnected: u64,
    /// Order-independent FNV checksum over `(query index, estimate bits)`
    /// of every answered query — equal across runs ⇒ the distributed run
    /// reproduced bit-for-bit (see `replay` module docs).
    pub checksum: u64,
    /// End-to-end wall clock.
    pub elapsed: Duration,
    /// Per-request latency across all clients (successful requests).
    pub latency: LatencyHistogram,
    /// Aggregated client transport counters.
    pub client: ClientStats,
    /// Longest gap between consecutive successful responses on any one
    /// client — during a failover run this upper-bounds the outage a
    /// client observed.
    pub max_success_gap: Duration,
}

fn merge_client_stats(into: &mut ClientStats, s: ClientStats) {
    into.requests += s.requests;
    into.ok += s.ok;
    into.shed += s.shed;
    into.reconnects += s.reconnects;
    into.rotations += s.rotations;
    into.net_errors += s.net_errors;
    into.backoff_secs += s.backoff_secs;
}

/// Drive `spec.clients` concurrent [`EstimateClient`]s against
/// `spec.endpoints` with a pre-generated query stream.
///
/// Determinism: queries come from the `LOADGEN` stream of `spec.seed` and
/// are striped to clients by index; each client's retry jitter comes from
/// `derive_seed(derive_seed(seed, NET), client)`. Two runs with the same
/// seed against equivalent servers produce the same [`NetLoadReport::checksum`]
/// regardless of thread interleaving.
pub fn run_net_loadgen(table: &Table, spec: &NetLoadSpec) -> Result<NetLoadReport, WarperError> {
    if spec.endpoints.is_empty() {
        return Err(WarperError::InvalidState(
            "loadgen needs ≥ 1 endpoint".into(),
        ));
    }
    let clients = spec.clients.max(1);
    let fmap = FeatureMap::new(table, spec.model);
    let mut rng = StdRng::seed_from_u64(derive_seed(spec.seed, seed_stream::LOADGEN));
    let mut gen = QueryGenerator::try_from_notation(table, &spec.mix)?;
    let preds = gen.generate_many(spec.n_queries, &mut rng);
    let feats: Vec<Vec<f64>> = preds.iter().map(|p| fmap.featurize(p)).collect();

    struct ClientOutcome {
        results: Vec<(usize, u64)>,
        shed: u64,
        rejected: u64,
        unavailable: u64,
        disconnected: u64,
        latency: LatencyHistogram,
        stats: ClientStats,
        max_gap: Duration,
    }

    let t0 = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let feats = &feats;
                let spec = &spec;
                s.spawn(move || {
                    let dialer = TcpDialer {
                        endpoints: spec.endpoints.clone(),
                        connect_timeout: spec.connect_timeout,
                    };
                    let seed = derive_seed(derive_seed(spec.seed, seed_stream::NET), c as u64);
                    let mut client = EstimateClient::new(Box::new(dialer), spec.policy, seed);
                    let mut out = ClientOutcome {
                        results: Vec::new(),
                        shed: 0,
                        rejected: 0,
                        unavailable: 0,
                        disconnected: 0,
                        latency: LatencyHistogram::new(),
                        stats: ClientStats::default(),
                        max_gap: Duration::ZERO,
                    };
                    let mut last_ok = Instant::now();
                    for (idx, f) in feats.iter().enumerate().skip(c).step_by(clients) {
                        let q0 = Instant::now();
                        match client.estimate(f) {
                            Ok(est) => {
                                out.latency.record_duration(q0.elapsed());
                                out.max_gap = out.max_gap.max(last_ok.elapsed());
                                last_ok = Instant::now();
                                out.results.push((idx, est.value.to_bits()));
                            }
                            Err(ClientError::Shed) => out.shed += 1,
                            Err(ClientError::Rejected { .. }) => out.rejected += 1,
                            Err(ClientError::Unavailable) => out.unavailable += 1,
                            Err(ClientError::Disconnected(_)) | Err(ClientError::Protocol(_)) => {
                                out.disconnected += 1
                            }
                        }
                    }
                    out.stats = client.stats();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(o) => o,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    });
    let elapsed = t0.elapsed();

    let mut results: Vec<(usize, u64)> = Vec::with_capacity(spec.n_queries);
    let mut report = NetLoadReport {
        n_queries: spec.n_queries,
        ok: 0,
        shed: 0,
        rejected: 0,
        unavailable: 0,
        disconnected: 0,
        checksum: 0,
        elapsed,
        latency: LatencyHistogram::new(),
        client: ClientStats::default(),
        max_success_gap: Duration::ZERO,
    };
    for out in outcomes {
        report.ok += out.results.len() as u64;
        report.shed += out.shed;
        report.rejected += out.rejected;
        report.unavailable += out.unavailable;
        report.disconnected += out.disconnected;
        report.latency.merge(&out.latency);
        report.max_success_gap = report.max_success_gap.max(out.max_gap);
        merge_client_stats(&mut report.client, out.stats);
        results.extend(out.results);
    }
    // Sort by query index so the checksum folds in a canonical order —
    // the value is then independent of client striping and interleaving.
    results.sort_unstable_by_key(|&(idx, _)| idx);
    report.checksum = crate::replay::checksum(&results);
    Ok(report)
}
