//! The v1 binary message set and its hand-rolled codec.
//!
//! Every message travels as one CRC32 frame (see [`super::conn::FrameConn`]);
//! this module encodes/decodes the frame *payload*: a tag byte followed by
//! little-endian fields. Variable-length fields carry a `u32` count that is
//! validated against both a hard cap and the bytes actually remaining in
//! the payload **before** any allocation, so a hostile length field can
//! neither panic the decoder nor balloon memory.
//!
//! The format is pinned by the golden fixture in
//! `tests/fixtures/wire_v1.hex` — change it only with a version bump.

use warper_durable::DurableEvent;

/// Wire protocol version, carried in every [`Msg::Hello`].
pub const NET_PROTO: u16 = 1;

/// Upper bound on a frame payload. Checkpoints with serialized model blobs
/// ride this protocol, so the cap is generous — but it is enforced before
/// `Vec::with_capacity` everywhere a length is read off the wire.
pub const MAX_NET_FRAME: u32 = 1 << 26; // 64 MiB

/// Upper bound on a feature vector's length.
pub const MAX_FEATURES: u32 = 1 << 16;

/// What a connection is for, declared in its first message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Estimate request/response traffic.
    Client,
    /// A warm standby subscribing to the replication stream.
    Standby,
}

/// Why the server refused to answer a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// This node is a standby that has not been promoted.
    NotPrimary,
    /// The service is draining for shutdown.
    ShuttingDown,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// First message on every connection, client → server.
    Hello { role: Role, proto: u16 },
    /// An estimation request; `id` correlates the response.
    EstimateReq { id: u64, features: Vec<f64> },
    /// The estimate (`value_bits` = `f64::to_bits`), plus the snapshot
    /// generation that served it and the micro-batch size it rode in.
    EstimateOk {
        id: u64,
        value_bits: u64,
        generation: u64,
        batch: u32,
    },
    /// Admission control shed the request (`BatchQueue` full). This is the
    /// *only* backpressure path — the server never buffers beyond the queue.
    Shed { id: u64 },
    /// Feature-dimension mismatch.
    Rejected { id: u64, expected: u32, got: u32 },
    /// The server cannot serve right now (see [`Refusal`]).
    Unavailable { id: u64, reason: Refusal },
    /// Replication, primary → standby: one durable mutation with its ship
    /// index (monotonic; the standby acks cumulatively by index).
    Repl { idx: u64, event: DurableEvent },
    /// Replication, standby → primary: everything up to and including
    /// `watermark` is applied and fsynced on the standby.
    ReplAck { watermark: u64 },
}

const TAG_HELLO: u8 = 1;
const TAG_ESTIMATE_REQ: u8 = 2;
const TAG_ESTIMATE_OK: u8 = 3;
const TAG_SHED: u8 = 4;
const TAG_REJECTED: u8 = 5;
const TAG_UNAVAILABLE: u8 = 6;
const TAG_REPL_WAL: u8 = 7;
const TAG_REPL_CKPT: u8 = 8;
const TAG_REPL_ACK: u8 = 9;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_f64s(out: &mut Vec<u8>, fs: &[f64]) {
    put_u32(out, fs.len() as u32);
    for f in fs {
        put_u64(out, f.to_bits());
    }
}

/// Encode a message to a frame payload.
pub fn encode(msg: &Msg) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        Msg::Hello { role, proto } => {
            out.push(TAG_HELLO);
            out.push(match role {
                Role::Client => 0,
                Role::Standby => 1,
            });
            put_u16(&mut out, *proto);
        }
        Msg::EstimateReq { id, features } => {
            out.push(TAG_ESTIMATE_REQ);
            put_u64(&mut out, *id);
            put_f64s(&mut out, features);
        }
        Msg::EstimateOk {
            id,
            value_bits,
            generation,
            batch,
        } => {
            out.push(TAG_ESTIMATE_OK);
            put_u64(&mut out, *id);
            put_u64(&mut out, *value_bits);
            put_u64(&mut out, *generation);
            put_u32(&mut out, *batch);
        }
        Msg::Shed { id } => {
            out.push(TAG_SHED);
            put_u64(&mut out, *id);
        }
        Msg::Rejected { id, expected, got } => {
            out.push(TAG_REJECTED);
            put_u64(&mut out, *id);
            put_u32(&mut out, *expected);
            put_u32(&mut out, *got);
        }
        Msg::Unavailable { id, reason } => {
            out.push(TAG_UNAVAILABLE);
            put_u64(&mut out, *id);
            out.push(match reason {
                Refusal::NotPrimary => 0,
                Refusal::ShuttingDown => 1,
            });
        }
        Msg::Repl { idx, event } => match event {
            DurableEvent::WalAppend { wal_seq, frame } => {
                out.push(TAG_REPL_WAL);
                put_u64(&mut out, *idx);
                put_u64(&mut out, *wal_seq);
                put_bytes(&mut out, frame);
            }
            DurableEvent::Checkpoint {
                seq,
                snapshot,
                carry,
            } => {
                out.push(TAG_REPL_CKPT);
                put_u64(&mut out, *idx);
                put_u64(&mut out, *seq);
                put_bytes(&mut out, snapshot);
                put_bytes(&mut out, carry);
            }
        },
        Msg::ReplAck { watermark } => {
            out.push(TAG_REPL_ACK);
            put_u64(&mut out, *watermark);
        }
    }
    out
}

/// Bounds-checked little-endian reader over a payload slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], &'static str> {
        if self.remaining() < n {
            return Err("payload truncated");
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, &'static str> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, &'static str> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, &'static str> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, &'static str> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Length-prefixed byte field. The count is checked against the bytes
    /// actually present before the copy allocates.
    fn bytes(&mut self) -> Result<Vec<u8>, &'static str> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err("byte field longer than payload");
        }
        Ok(self.take(n)?.to_vec())
    }

    /// Length-prefixed f64 vector, count capped by [`MAX_FEATURES`] and by
    /// the bytes actually present before allocation.
    fn f64s(&mut self) -> Result<Vec<f64>, &'static str> {
        let n = self.u32()?;
        if n > MAX_FEATURES {
            return Err("feature vector too long");
        }
        let n = n as usize;
        if n.saturating_mul(8) > self.remaining() {
            return Err("feature field longer than payload");
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f64::from_bits(self.u64()?));
        }
        Ok(out)
    }

    fn done(&self) -> Result<(), &'static str> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err("trailing bytes after message")
        }
    }
}

/// Decode one frame payload. Any input — truncated, bit-flipped, hostile —
/// yields a typed error; the decoder never panics and never allocates past
/// the payload it was handed.
pub fn decode(payload: &[u8]) -> Result<Msg, &'static str> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let msg = match r.u8()? {
        TAG_HELLO => {
            let role = match r.u8()? {
                0 => Role::Client,
                1 => Role::Standby,
                _ => return Err("unknown role"),
            };
            Msg::Hello {
                role,
                proto: r.u16()?,
            }
        }
        TAG_ESTIMATE_REQ => Msg::EstimateReq {
            id: r.u64()?,
            features: r.f64s()?,
        },
        TAG_ESTIMATE_OK => Msg::EstimateOk {
            id: r.u64()?,
            value_bits: r.u64()?,
            generation: r.u64()?,
            batch: r.u32()?,
        },
        TAG_SHED => Msg::Shed { id: r.u64()? },
        TAG_REJECTED => Msg::Rejected {
            id: r.u64()?,
            expected: r.u32()?,
            got: r.u32()?,
        },
        TAG_UNAVAILABLE => {
            let id = r.u64()?;
            let reason = match r.u8()? {
                0 => Refusal::NotPrimary,
                1 => Refusal::ShuttingDown,
                _ => return Err("unknown refusal"),
            };
            Msg::Unavailable { id, reason }
        }
        TAG_REPL_WAL => Msg::Repl {
            idx: r.u64()?,
            event: DurableEvent::WalAppend {
                wal_seq: r.u64()?,
                frame: r.bytes()?,
            },
        },
        TAG_REPL_CKPT => Msg::Repl {
            idx: r.u64()?,
            event: DurableEvent::Checkpoint {
                seq: r.u64()?,
                snapshot: r.bytes()?,
                carry: r.bytes()?,
            },
        },
        TAG_REPL_ACK => Msg::ReplAck {
            watermark: r.u64()?,
        },
        _ => return Err("unknown message tag"),
    };
    r.done()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_msgs() -> Vec<Msg> {
        vec![
            Msg::Hello {
                role: Role::Client,
                proto: NET_PROTO,
            },
            Msg::Hello {
                role: Role::Standby,
                proto: NET_PROTO,
            },
            Msg::EstimateReq {
                id: 42,
                features: vec![0.25, -1.5, f64::MAX],
            },
            Msg::EstimateOk {
                id: 42,
                value_bits: 123.456f64.to_bits(),
                generation: 7,
                batch: 16,
            },
            Msg::Shed { id: 9 },
            Msg::Rejected {
                id: 10,
                expected: 12,
                got: 3,
            },
            Msg::Unavailable {
                id: 11,
                reason: Refusal::NotPrimary,
            },
            Msg::Repl {
                idx: 5,
                event: DurableEvent::WalAppend {
                    wal_seq: 2,
                    frame: vec![1, 2, 3, 4],
                },
            },
            Msg::Repl {
                idx: 6,
                event: DurableEvent::Checkpoint {
                    seq: 3,
                    snapshot: vec![9; 32],
                    carry: vec![],
                },
            },
            Msg::ReplAck { watermark: 6 },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for msg in all_msgs() {
            let enc = encode(&msg);
            assert_eq!(decode(&enc).as_ref(), Ok(&msg), "{msg:?}");
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for msg in all_msgs() {
            let enc = encode(&msg);
            for cut in 0..enc.len() {
                assert!(decode(&enc[..cut]).is_err(), "{msg:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut enc = encode(&Msg::Shed { id: 1 });
        enc.push(0);
        assert_eq!(decode(&enc), Err("trailing bytes after message"));
    }

    #[test]
    fn hostile_length_fields_do_not_allocate() {
        // EstimateReq claiming u32::MAX features in a 13-byte payload.
        let mut buf = vec![TAG_ESTIMATE_REQ];
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&buf).is_err());
        // Repl wal frame claiming 4 GiB of bytes.
        let mut buf = vec![TAG_REPL_WAL];
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&buf).is_err());
    }
}
