//! Replication: primary-side ship log + ack watermark, standby-side
//! validate-then-install applier, and promotion through the PR 5 recovery
//! path.
//!
//! ## The invariant (DESIGN.md §11)
//!
//! *Acked ⇒ on the standby within the lag bound; the standby serves only
//! validated snapshots.* Concretely:
//!
//! * Every durable mutation the primary fsyncs is published to the
//!   [`ReplHub`] in commit order (via the `DurableStore` tap) and shipped
//!   to the standby, which applies it to its own Vfs — byte-identical
//!   files under the same names — fsyncs, and acks its cumulative
//!   watermark. [`ReplHub::lag`] is the measured distance between the two.
//! * A label appended with [`ReplicatedStore::append_label_replicated`] in
//!   [`AckMode::Replicated`] is acknowledged only after the standby's
//!   watermark covers it — those labels survive failover *by construction*
//!   (proven per fault × op in `tests/net_failover.rs`). In
//!   [`AckMode::Local`] the label is acked when locally durable and reaches
//!   the standby asynchronously within the lag watermark.
//! * The standby validates everything before installing it: a shipped
//!   checkpoint must decode *and* pass `WarperState::validate` before it
//!   touches the standby's directory or warms its serving cell; a shipped
//!   WAL frame must be checksum-valid and decodable before it is appended.
//!   Promotion re-runs the full [`DurableStore::open`] recovery (newest
//!   valid snapshot → validate → WAL-tail replay with truncate-repair), so
//!   a standby can never serve an unvalidated or torn-tail model.

use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use warper_durable::wal::WAL_MAGIC;
use warper_durable::{
    decode_snapshot, snap_file_name, validate_wal_frame, wal_file_name, DurabilityConfig,
    DurabilityError, DurableEvent, DurableStore, RecoveryReport, Vfs,
};

use crate::snapshot::{ModelSnapshot, SnapshotCell};

/// Point-in-time replication distance between primary and standby.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplLag {
    /// Ship index of the newest published mutation.
    pub published: u64,
    /// The standby's cumulative ack watermark.
    pub acked: u64,
    /// Mutations published but not yet acked.
    pub ops_behind: u64,
    /// Age of the oldest unacked mutation.
    pub secs_behind: f64,
}

/// Lifetime replication counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplHubStats {
    /// Mutations published to the hub.
    pub published: u64,
    /// The final ack watermark.
    pub acked: u64,
    /// Checkpoints among the published mutations.
    pub snapshots: u64,
    /// WAL frames among the published mutations.
    pub wal_frames: u64,
    /// Largest observed ops-behind.
    pub max_ops_behind: u64,
    /// Largest observed ack latency (publish → ack), seconds.
    pub max_secs_behind: f64,
}

struct HubInner {
    /// Retained mutations, oldest first. Compacted at every checkpoint:
    /// a shipped snapshot supersedes everything before it (carry-forward
    /// WAL records ride inside the checkpoint event), so the log is
    /// bounded by one checkpoint interval — no unbounded buffering.
    log: VecDeque<(u64, DurableEvent)>,
    next_idx: u64,
    acked: u64,
    /// Publish instants of unacked mutations, for the time-lag watermark.
    inflight: VecDeque<(u64, Instant)>,
    stats: ReplHubStats,
}

/// Primary-side replication fan-out: the `DurableStore` tap publishes every
/// durable mutation here; per-standby shipper threads fetch from it and
/// feed acks back.
pub struct ReplHub {
    inner: Mutex<HubInner>,
    cv: Condvar,
}

impl Default for ReplHub {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplHub {
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(HubInner {
                log: VecDeque::new(),
                next_idx: 1,
                acked: 0,
                inflight: VecDeque::new(),
                stats: ReplHubStats::default(),
            }),
            cv: Condvar::new(),
        }
    }

    /// The tap to install on the primary's `DurableStore`.
    pub fn tap(self: &Arc<Self>) -> warper_durable::DurableTap {
        let hub = Arc::clone(self);
        Box::new(move |ev| {
            hub.publish(ev.clone());
        })
    }

    /// Publish one mutation; returns its ship index.
    pub fn publish(&self, ev: DurableEvent) -> u64 {
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let idx = g.next_idx;
        g.next_idx += 1;
        match &ev {
            DurableEvent::Checkpoint { .. } => {
                // The snapshot supersedes everything shipped before it.
                g.log.clear();
                g.stats.snapshots += 1;
            }
            DurableEvent::WalAppend { .. } => g.stats.wal_frames += 1,
        }
        g.log.push_back((idx, ev));
        g.inflight.push_back((idx, Instant::now()));
        g.stats.published = idx;
        let behind = idx - g.acked.min(idx);
        g.stats.max_ops_behind = g.stats.max_ops_behind.max(behind);
        self.cv.notify_all();
        idx
    }

    /// Ship index of the newest published mutation (0 = none yet).
    pub fn last_published(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .next_idx
            - 1
    }

    /// Mutations with index > `after`, waiting up to `timeout` for at least
    /// one. The standby's first fetch (`after = 0`) starts at the oldest
    /// retained entry, which after any checkpoint is a full snapshot.
    pub fn fetch(&self, after: u64, timeout: Duration) -> Vec<(u64, DurableEvent)> {
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            let out: Vec<(u64, DurableEvent)> = g
                .log
                .iter()
                .filter(|(idx, _)| *idx > after)
                .cloned()
                .collect();
            if !out.is_empty() {
                return out;
            }
            let now = Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            let (g2, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            g = g2;
        }
    }

    /// Record the standby's cumulative ack.
    pub fn record_ack(&self, watermark: u64) {
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if watermark > g.acked {
            g.acked = watermark;
            g.stats.acked = watermark;
            let now = Instant::now();
            while g.inflight.front().is_some_and(|&(idx, _)| idx <= watermark) {
                if let Some((_, at)) = g.inflight.pop_front() {
                    let secs = now.duration_since(at).as_secs_f64();
                    if secs > g.stats.max_secs_behind {
                        g.stats.max_secs_behind = secs;
                    }
                }
            }
            self.cv.notify_all();
        }
    }

    /// Block until the ack watermark covers `idx`; `false` on timeout.
    pub fn wait_acked(&self, idx: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if g.acked >= idx {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g2, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            g = g2;
        }
    }

    /// The measured replication-lag watermark.
    pub fn lag(&self) -> ReplLag {
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let published = g.next_idx - 1;
        let secs_behind = g
            .inflight
            .front()
            .map(|&(_, at)| at.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        ReplLag {
            published,
            acked: g.acked,
            ops_behind: published - g.acked.min(published),
            secs_behind,
        }
    }

    pub fn stats(&self) -> ReplHubStats {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats
    }
}

/// When `append_label_replicated` acknowledges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Ack when locally durable; replication is asynchronous (bounded by
    /// the lag watermark).
    Local,
    /// Ack only after the standby's watermark covers the append; falls
    /// back to [`AckLevel::Local`] if the standby misses the deadline.
    Replicated,
}

/// How far an acknowledged label actually got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckLevel {
    /// Durable on the primary only.
    Local,
    /// Durable on the primary *and* applied+fsynced on the standby —
    /// guaranteed to survive failover.
    Replicated,
}

/// A `DurableStore` wired into a [`ReplHub`], with replication-acked
/// appends. The store itself is shared (`Arc<Mutex<_>>`) so the adaptation
/// worker's existing WAL path replicates transparently through the tap.
pub struct ReplicatedStore {
    pub store: Arc<Mutex<DurableStore>>,
    pub hub: Arc<ReplHub>,
    /// How long a [`AckMode::Replicated`] append waits for the standby.
    pub ack_timeout: Duration,
}

impl ReplicatedStore {
    /// Install the hub's tap and share the store.
    pub fn new(mut store: DurableStore, hub: Arc<ReplHub>, ack_timeout: Duration) -> Self {
        store.set_tap(hub.tap());
        Self {
            store: Arc::new(Mutex::new(store)),
            hub,
            ack_timeout,
        }
    }

    /// Durably log one label, then (in [`AckMode::Replicated`]) wait for
    /// the standby's ack. The returned level reports how far the label
    /// verifiably got; `Ok(_)` always means at least locally durable.
    pub fn append_label_replicated(
        &self,
        features: &[f64],
        gt: f64,
        arrival: bool,
        mode: AckMode,
    ) -> Result<AckLevel, DurabilityError> {
        let idx = {
            let mut s = self.store.lock().unwrap_or_else(PoisonError::into_inner);
            s.append_label(features, gt, arrival)?;
            self.hub.last_published()
        };
        match mode {
            AckMode::Local => Ok(AckLevel::Local),
            AckMode::Replicated => {
                if self.hub.wait_acked(idx, self.ack_timeout) {
                    Ok(AckLevel::Replicated)
                } else {
                    Ok(AckLevel::Local)
                }
            }
        }
    }
}

/// Standby-side applier counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandbyStats {
    /// Checkpoints validated and installed.
    pub snapshots_applied: u64,
    /// WAL frames validated and appended.
    pub wal_frames_applied: u64,
    /// Shipped mutations rejected by validation (never installed).
    pub rejected_ops: u64,
}

/// What promotion recovered.
pub struct Promotion {
    /// The recovered store, positioned to continue appending — the promoted
    /// node keeps full durability.
    pub store: DurableStore,
    /// The recovery report from the PR 5 path.
    pub report: RecoveryReport,
    /// Snapshot generation published to the serving cell.
    pub generation: u64,
}

/// Applies shipped mutations to the standby's own Vfs, warms the serving
/// cell with validated models, and promotes through full recovery.
pub struct StandbyApplier {
    vfs: Arc<dyn Vfs>,
    cell: Arc<SnapshotCell<ModelSnapshot>>,
    watermark: u64,
    /// WAL files this applier has already created (avoid re-writing magic).
    wals_created: HashSet<u64>,
    /// Newest checkpoint sequence that passed local validation.
    pub validated_seq: u64,
    pub stats: StandbyStats,
}

impl StandbyApplier {
    pub fn new(vfs: Arc<dyn Vfs>, cell: Arc<SnapshotCell<ModelSnapshot>>) -> Self {
        Self {
            vfs,
            cell,
            watermark: 0,
            wals_created: HashSet::new(),
            validated_seq: 0,
            stats: StandbyStats::default(),
        }
    }

    /// Cumulative index of the last applied-and-fsynced mutation — the
    /// value acked back to the primary.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Whether at least one validated checkpoint is installed (the minimum
    /// for promotion to have something to recover).
    pub fn promotable(&self) -> bool {
        self.validated_seq > 0
    }

    /// Validate and apply one shipped mutation. On `Ok` the mutation is
    /// durable locally and `watermark()` covers `idx`; on `Err` nothing was
    /// installed (a corrupt ship can never poison the replica).
    pub fn apply(&mut self, idx: u64, ev: &DurableEvent) -> Result<(), DurabilityError> {
        match self.apply_inner(ev) {
            Ok(()) => {
                self.watermark = self.watermark.max(idx);
                Ok(())
            }
            Err(e) => {
                self.stats.rejected_ops += 1;
                Err(e)
            }
        }
    }

    fn apply_inner(&mut self, ev: &DurableEvent) -> Result<(), DurabilityError> {
        match ev {
            DurableEvent::Checkpoint {
                seq,
                snapshot,
                carry,
            } => {
                // Vet the full image — including `WarperState::validate` —
                // before any byte lands in the replica directory.
                let (_state, model) = decode_snapshot(snapshot)?;

                // Install with the same tmp → fsync → rename → sync_dir
                // protocol the primary uses.
                let tmp = format!("tmp-repl-{seq:08}.ckpt");
                let snap = snap_file_name(*seq);
                self.vfs.create(&tmp)?;
                self.vfs.append(&tmp, snapshot)?;
                self.vfs.fsync(&tmp)?;
                self.vfs.rename(&tmp, &snap)?;

                let wname = wal_file_name(*seq);
                self.vfs.create(&wname)?;
                self.vfs.append(&wname, WAL_MAGIC)?;
                if !carry.is_empty() {
                    self.vfs.append(&wname, carry)?;
                }
                self.vfs.fsync(&wname)?;
                self.vfs.sync_dir()?;
                self.wals_created.insert(*seq);

                // Same retention policy as the primary: newest + last known
                // good (best-effort).
                let keep_from = seq.saturating_sub(1);
                if let Ok(names) = self.vfs.list() {
                    for name in names {
                        let old = parse_replica_seq(&name).is_some_and(|s| s < keep_from);
                        if old {
                            let _ = self.vfs.remove(&name);
                        }
                    }
                    let _ = self.vfs.sync_dir();
                }

                // Warm the serving cell so promotion is instant — but only
                // with the model that just passed validation, and only
                // behind the server's not-promoted gate.
                if let Some(model) = model {
                    let generation = self.cell.version() + 1;
                    self.cell.publish(ModelSnapshot {
                        generation,
                        model,
                        precision: crate::Precision::F64,
                    });
                }
                self.validated_seq = *seq;
                self.stats.snapshots_applied += 1;
                Ok(())
            }
            DurableEvent::WalAppend { wal_seq, frame } => {
                // Vet the frame before appending: checksum + decode.
                validate_wal_frame(frame)?;
                let wname = wal_file_name(*wal_seq);
                if !self.wals_created.contains(wal_seq) {
                    // First frame for a WAL we didn't rotate ourselves
                    // (e.g. ships that started before the first shipped
                    // checkpoint): create it with the magic header.
                    if self.vfs.size(&wname).is_err() {
                        self.vfs.create(&wname)?;
                        self.vfs.append(&wname, WAL_MAGIC)?;
                        self.vfs.sync_dir()?;
                    }
                    self.wals_created.insert(*wal_seq);
                }
                self.vfs.append(&wname, frame)?;
                self.vfs.fsync(&wname)?;
                self.stats.wal_frames_applied += 1;
                Ok(())
            }
        }
    }

    /// Promote: run the full recovery path over the replica directory —
    /// newest *valid* snapshot, `WarperState::validate`, WAL-tail replay
    /// with truncate-repair — and publish the recovered model to the
    /// serving cell. This is the only road to serving from a standby, so
    /// an unvalidated or torn-tail model cannot be promoted.
    pub fn promote(&mut self, cfg: DurabilityConfig) -> Result<Promotion, DurabilityError> {
        let (store, recovered) = DurableStore::open(Arc::clone(&self.vfs), cfg)?;
        let Some(rec) = recovered else {
            return Err(DurabilityError::Corrupt(
                "standby has no replicated checkpoint to promote from".into(),
            ));
        };
        let Some(model) = rec.model else {
            return Err(DurabilityError::Corrupt(
                "replicated checkpoint carries no serving model".into(),
            ));
        };
        let generation = self.cell.version() + 1;
        self.cell.publish(ModelSnapshot {
            generation,
            model,
            precision: crate::Precision::F64,
        });
        Ok(Promotion {
            store,
            report: rec.report,
            generation,
        })
    }
}

fn parse_replica_seq(name: &str) -> Option<u64> {
    let stripped = name
        .strip_prefix("snap-")
        .and_then(|n| n.strip_suffix(".ckpt"))
        .or_else(|| {
            name.strip_prefix("wal-")
                .and_then(|n| n.strip_suffix(".log"))
        })?;
    stripped.parse().ok()
}
