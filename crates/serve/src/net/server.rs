//! The connection handler and the TCP accept loop.
//!
//! Backpressure discipline: a connection handler holds at most one request
//! in flight — it reads a frame, asks the shared [`crate::ServiceHandle`]
//! (whose `BatchQueue` sheds on overflow), and writes exactly one response.
//! A full queue therefore maps *directly* to a [`Msg::Shed`] on the wire;
//! nothing on the path buffers unboundedly. Deadlines bound both
//! directions: a read or write that misses its per-connection deadline
//! trips the counter (surfaced in `ServiceStats::deadline_trips`) and
//! closes the connection — the client's bounded retry owns recovery.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use super::codec::{Msg, Refusal, Role, NET_PROTO};
use super::conn::{ByteStream, FrameConn};
use super::repl::ReplHub;
use super::tcp::Listener;
use super::NetError;
use crate::service::{ServeError, ServiceHandle};

/// Per-connection tunables.
#[derive(Debug, Clone, Copy)]
pub struct NetServerConfig {
    /// Read deadline: the longest the handler waits for the next frame
    /// (doubling as the idle timeout) or for the rest of a started frame.
    pub read_deadline: Duration,
    /// Write deadline per response frame.
    pub write_deadline: Duration,
    /// Deadline for the initial `Hello`.
    pub hello_deadline: Duration,
    /// How long a replication shipper waits per hub fetch (bounds its
    /// reaction time to a stop request).
    pub repl_poll: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self {
            read_deadline: Duration::from_secs(5),
            write_deadline: Duration::from_secs(5),
            hello_deadline: Duration::from_secs(2),
            repl_poll: Duration::from_millis(50),
        }
    }
}

#[derive(Default)]
struct NetCounters {
    connections: AtomicU64,
    requests: AtomicU64,
    responses_ok: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    unavailable: AtomicU64,
    deadline_trips: AtomicU64,
    decode_errors: AtomicU64,
    cut_connections: AtomicU64,
    standbys: AtomicU64,
}

/// A point-in-time copy of the network counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub connections: u64,
    /// Estimate requests received.
    pub requests: u64,
    /// `EstimateOk` responses sent.
    pub responses_ok: u64,
    /// `Shed` responses sent (queue-full backpressure on the wire).
    pub shed: u64,
    /// `Rejected` responses sent.
    pub rejected: u64,
    /// `Unavailable` responses sent (standby not promoted / draining).
    pub unavailable: u64,
    /// Connections closed because a read/write missed its deadline.
    pub deadline_trips: u64,
    /// Connections closed on undecodable bytes.
    pub decode_errors: u64,
    /// Connections that died mid-frame (peer cut).
    pub cut_connections: u64,
    /// Standby replication subscriptions accepted.
    pub standbys: u64,
}

/// Shared state every connection handler works against. Separated from the
/// TCP accept loop so tests can drive [`serve_connection`] over in-memory
/// pipes and fault injectors.
pub struct ServerCore {
    handle: ServiceHandle,
    serving: AtomicBool,
    hub: Option<Arc<ReplHub>>,
    counters: NetCounters,
    stop: AtomicBool,
}

impl ServerCore {
    /// `serving = false` starts the node as a refusing standby (requests
    /// get `Unavailable { NotPrimary }` until [`ServerCore::set_serving`]).
    /// `hub` enables standby subscriptions (primary role).
    pub fn new(handle: ServiceHandle, serving: bool, hub: Option<Arc<ReplHub>>) -> Arc<Self> {
        Arc::new(Self {
            handle,
            serving: AtomicBool::new(serving),
            hub,
            counters: NetCounters::default(),
            stop: AtomicBool::new(false),
        })
    }

    pub fn set_serving(&self, serving: bool) {
        self.serving.store(serving, Ordering::Release);
    }

    pub fn is_serving(&self) -> bool {
        self.serving.load(Ordering::Acquire)
    }

    /// Ask every handler loop to wind down at its next deadline check.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    pub fn stats(&self) -> NetStats {
        let c = &self.counters;
        NetStats {
            connections: c.connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            responses_ok: c.responses_ok.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            unavailable: c.unavailable.load(Ordering::Relaxed),
            deadline_trips: c.deadline_trips.load(Ordering::Relaxed),
            decode_errors: c.decode_errors.load(Ordering::Relaxed),
            cut_connections: c.cut_connections.load(Ordering::Relaxed),
            standbys: c.standbys.load(Ordering::Relaxed),
        }
    }
}

/// Handle one connection to completion. Generic over the transport so the
/// failpoint suite runs the exact production handler over injected faults.
pub fn serve_connection<S: ByteStream>(stream: S, core: &Arc<ServerCore>, cfg: &NetServerConfig) {
    core.counters.connections.fetch_add(1, Ordering::Relaxed);
    let mut conn = FrameConn::new(stream);
    if conn
        .stream_mut()
        .set_read_deadline(Some(cfg.hello_deadline))
        .is_err()
        || conn
            .stream_mut()
            .set_write_deadline(Some(cfg.write_deadline))
            .is_err()
    {
        return;
    }
    let hello = match conn.recv() {
        Ok(Msg::Hello { role, proto }) if proto == NET_PROTO => role,
        Ok(_) => {
            core.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        Err(e) => {
            note_recv_error(core, &e);
            return;
        }
    };
    if conn
        .stream_mut()
        .set_read_deadline(Some(cfg.read_deadline))
        .is_err()
    {
        return;
    }
    match hello {
        Role::Client => client_loop(&mut conn, core),
        Role::Standby => standby_loop(&mut conn, core, cfg),
    }
}

fn note_recv_error(core: &Arc<ServerCore>, e: &NetError) {
    match e {
        NetError::Closed => {}
        NetError::TimedOut => {
            if !core.stopped() {
                core.counters.deadline_trips.fetch_add(1, Ordering::Relaxed);
                core.handle.note_deadline_trip();
            }
        }
        NetError::Corrupt(_) => {
            core.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
        }
        NetError::Cut(_) | NetError::Io(_) => {
            core.counters
                .cut_connections
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn client_loop<S: ByteStream>(conn: &mut FrameConn<S>, core: &Arc<ServerCore>) {
    loop {
        if core.stopped() {
            return;
        }
        match conn.recv() {
            Ok(Msg::EstimateReq { id, features }) => {
                core.counters.requests.fetch_add(1, Ordering::Relaxed);
                let resp = if !core.is_serving() {
                    core.counters.unavailable.fetch_add(1, Ordering::Relaxed);
                    Msg::Unavailable {
                        id,
                        reason: Refusal::NotPrimary,
                    }
                } else {
                    match core.handle.estimate(features) {
                        Ok(est) => {
                            core.counters.responses_ok.fetch_add(1, Ordering::Relaxed);
                            Msg::EstimateOk {
                                id,
                                value_bits: est.value.to_bits(),
                                generation: est.generation,
                                batch: est.batch_size as u32,
                            }
                        }
                        // Queue full → Shed on the wire. The request is
                        // dropped here and now; the server never buffers it.
                        Err(ServeError::Shed) => {
                            core.counters.shed.fetch_add(1, Ordering::Relaxed);
                            Msg::Shed { id }
                        }
                        Err(ServeError::FeatureDim { expected, got }) => {
                            core.counters.rejected.fetch_add(1, Ordering::Relaxed);
                            Msg::Rejected {
                                id,
                                expected: expected as u32,
                                got: got as u32,
                            }
                        }
                        Err(ServeError::Closed) => {
                            core.counters.unavailable.fetch_add(1, Ordering::Relaxed);
                            Msg::Unavailable {
                                id,
                                reason: Refusal::ShuttingDown,
                            }
                        }
                    }
                };
                if let Err(e) = conn.send(&resp) {
                    note_recv_error(core, &e);
                    return;
                }
            }
            Ok(_) => {
                core.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(e) => {
                note_recv_error(core, &e);
                return;
            }
        }
    }
}

/// Ship the replication stream to one standby: a writer loop fetching from
/// the hub plus a reader thread draining acks on a cloned handle.
fn standby_loop<S: ByteStream>(
    conn: &mut FrameConn<S>,
    core: &Arc<ServerCore>,
    cfg: &NetServerConfig,
) {
    let Some(hub) = core.hub.as_ref() else {
        // Not a primary: nothing to ship.
        core.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    core.counters.standbys.fetch_add(1, Ordering::Relaxed);
    let Ok(mut ack_stream) = conn.stream().try_clone() else {
        return;
    };
    let hub_rd = Arc::clone(hub);
    let core_rd = Arc::clone(core);
    let cfg_rd = *cfg;
    let reader = std::thread::Builder::new()
        .name("repl-acks".into())
        .spawn(move || {
            // Acks are sparse; poll with the read deadline so a stop
            // request is honored even on a silent link.
            let _ = ack_stream.set_read_deadline(Some(cfg_rd.read_deadline));
            let mut conn = FrameConn::new(ack_stream);
            loop {
                if core_rd.stopped() {
                    return;
                }
                match conn.recv() {
                    Ok(Msg::ReplAck { watermark }) => hub_rd.record_ack(watermark),
                    Ok(_) => return,
                    Err(NetError::TimedOut) => continue,
                    Err(_) => return,
                }
            }
        });
    let mut cursor = 0u64;
    'ship: loop {
        if core.stopped() {
            break;
        }
        for (idx, event) in hub.fetch(cursor, cfg.repl_poll) {
            if conn.send(&Msg::Repl { idx, event }).is_err() {
                core.counters
                    .cut_connections
                    .fetch_add(1, Ordering::Relaxed);
                break 'ship;
            }
            cursor = cursor.max(idx);
        }
    }
    conn.stream().shutdown();
    if let Ok(r) = reader {
        let _ = r.join();
    }
}

/// The TCP server: accept loop + per-connection handler threads.
pub struct NetServer {
    core: Arc<ServerCore>,
    addr: String,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<Box<dyn ByteStream>>>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind `addr` (use `:0` for an OS-assigned port) and start accepting.
    pub fn bind(addr: &str, core: Arc<ServerCore>, cfg: NetServerConfig) -> Result<Self, NetError> {
        let listener = Listener::bind(addr)?;
        let bound = listener.local_addr().to_string();
        let conns: Arc<Mutex<Vec<Box<dyn ByteStream>>>> = Arc::default();
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let accept = {
            let core = Arc::clone(&core);
            let conns = Arc::clone(&conns);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || loop {
                    if core.stopped() {
                        return;
                    }
                    match listener.accept_timeout(Duration::from_millis(25)) {
                        Ok(Some(stream)) => {
                            if let Ok(kill) = stream.try_clone() {
                                conns
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .push(kill);
                            }
                            let core = Arc::clone(&core);
                            let spawned = std::thread::Builder::new()
                                .name("net-conn".into())
                                .spawn(move || serve_connection(stream, &core, &cfg));
                            if let Ok(h) = spawned {
                                handlers
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .push(h);
                            }
                        }
                        Ok(None) => {}
                        Err(_) => return,
                    }
                })
                .map_err(|e| NetError::Io(e.to_string()))?
        };
        Ok(Self {
            core,
            addr: bound,
            accept: Some(accept),
            conns,
            handlers,
        })
    }

    /// The bound address, with the real port.
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    pub fn core(&self) -> &Arc<ServerCore> {
        &self.core
    }

    /// Abruptly sever every live connection (clients see cuts, not drains).
    /// The failover path: kill the primary mid-traffic.
    pub fn kill_connections(&self) {
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            conn.shutdown();
        }
    }

    /// Stop accepting, sever connections, join all threads.
    pub fn shutdown(mut self) -> NetStats {
        self.core.stop();
        self.kill_connections();
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        let handlers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.handlers.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handlers {
            let _ = h.join();
        }
        self.core.stats()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.core.stop();
        self.kill_connections();
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
    }
}
