//! The reconnecting estimation client.
//!
//! Every call is bounded: each network op carries the per-op deadline, a
//! failed attempt rotates to the next endpoint after an exponential backoff
//! with deterministic jitter, and after `max_attempts` the call returns
//! [`ClientError::Disconnected`] — a client call can time out or fail, but
//! it can never hang. Jitter is derived from the caller's seed (see
//! `seed_stream::NET`), so retry schedules — and therefore multi-client
//! replays — stay reproducible.

use std::time::Duration;

use super::codec::{Msg, Role, NET_PROTO};
use super::conn::{ByteStream, FrameConn};
use super::NetError;
use crate::service::Estimate;

/// Produces connections to one of several endpoints (index 0 = primary).
/// Abstracted so tests can dial in-memory pipes and inject link faults.
pub trait Dialer: Send {
    /// Number of configured endpoints.
    fn endpoints(&self) -> usize;
    /// Open a fresh connection to endpoint `endpoint`.
    fn dial(&mut self, endpoint: usize) -> Result<Box<dyn ByteStream>, NetError>;
}

/// Retry/backoff policy for one client.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per call (dial + request each); exhausting them returns
    /// [`ClientError::Disconnected`].
    pub max_attempts: u32,
    /// First backoff; doubles per failed attempt.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Read/write deadline applied to every network op.
    pub op_deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(250),
            op_deadline: Duration::from_secs(2),
        }
    }
}

/// Why a client call failed. `Shed` and `Rejected` are the server's typed
/// backpressure surfacing unchanged; the rest are transport outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The server shed the request (queue full). Not retried — shedding is
    /// load feedback, and hammering a shedding server inverts it.
    Shed,
    /// Feature-dimension mismatch.
    Rejected { expected: u32, got: u32 },
    /// The server refused (standby not promoted / draining) on the last
    /// attempt, after endpoint rotation.
    Unavailable,
    /// Retries exhausted; the message describes the last failure.
    Disconnected(String),
    /// The peer spoke the protocol wrong.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Shed => write!(f, "request shed by server"),
            ClientError::Rejected { expected, got } => {
                write!(f, "rejected: expected {expected} features, got {got}")
            }
            ClientError::Unavailable => write!(f, "no endpoint is serving"),
            ClientError::Disconnected(msg) => write!(f, "disconnected: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Lifetime client counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    /// Calls attempted.
    pub requests: u64,
    /// Calls answered with an estimate.
    pub ok: u64,
    /// Calls shed by the server.
    pub shed: u64,
    /// Reconnections (dials after the first).
    pub reconnects: u64,
    /// Endpoint rotations (failovers attempted).
    pub rotations: u64,
    /// Network errors absorbed by retry.
    pub net_errors: u64,
    /// Total seconds spent in backoff sleeps.
    pub backoff_secs: f64,
}

/// A synchronous estimation client with bounded reconnect.
pub struct EstimateClient {
    dialer: Box<dyn Dialer>,
    policy: RetryPolicy,
    conn: Option<FrameConn<Box<dyn ByteStream>>>,
    endpoint: usize,
    next_id: u64,
    dials: u64,
    rng: u64,
    stats: ClientStats,
}

impl EstimateClient {
    /// `seed` drives the backoff jitter — pass
    /// `derive_seed(derive_seed(master, seed_stream::NET), connection_index)`
    /// for deterministic multi-client runs.
    pub fn new(dialer: Box<dyn Dialer>, policy: RetryPolicy, seed: u64) -> Self {
        Self {
            dialer,
            policy,
            conn: None,
            endpoint: 0,
            next_id: 1,
            dials: 0,
            // xorshift64* state must be nonzero.
            rng: seed | 1,
            stats: ClientStats::default(),
        }
    }

    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The endpoint index the client is currently pointed at.
    pub fn endpoint(&self) -> usize {
        self.endpoint
    }

    fn jitter01(&mut self) -> f64 {
        // xorshift64*: deterministic, cheap, good enough for jitter.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }

    /// Full jitter on an exponential schedule: `[base·2^a / 2, base·2^a]`,
    /// capped.
    fn backoff(&mut self, attempt: u32) {
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.policy.max_backoff);
        let sleep = exp.mul_f64(0.5 + 0.5 * self.jitter01());
        self.stats.backoff_secs += sleep.as_secs_f64();
        std::thread::sleep(sleep);
    }

    fn rotate(&mut self) {
        self.conn = None;
        let n = self.dialer.endpoints().max(1);
        if n > 1 {
            self.endpoint = (self.endpoint + 1) % n;
            self.stats.rotations += 1;
        }
    }

    fn ensure_conn(&mut self) -> Result<(), NetError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut stream = self.dialer.dial(self.endpoint)?;
        stream.set_read_deadline(Some(self.policy.op_deadline))?;
        stream.set_write_deadline(Some(self.policy.op_deadline))?;
        let mut conn = FrameConn::new(stream);
        conn.send(&Msg::Hello {
            role: Role::Client,
            proto: NET_PROTO,
        })?;
        self.dials += 1;
        if self.dials > 1 {
            self.stats.reconnects += 1;
        }
        self.conn = Some(conn);
        Ok(())
    }

    /// One estimate, end to end: connect (or reuse), send, await the
    /// response. Bounded by `max_attempts × (op_deadline + backoff)`.
    pub fn estimate(&mut self, features: &[f64]) -> Result<Estimate, ClientError> {
        self.stats.requests += 1;
        let id = self.next_id;
        self.next_id += 1;
        let mut last_err: Option<String> = None;
        let mut saw_unavailable = false;

        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.backoff(attempt - 1);
            }
            if let Err(e) = self.ensure_conn() {
                self.stats.net_errors += 1;
                last_err = Some(e.to_string());
                self.rotate();
                continue;
            }
            let req = Msg::EstimateReq {
                id,
                features: features.to_vec(),
            };
            let resp = self
                .conn
                .as_mut()
                .map(|c| c.send(&req).and_then(|()| c.recv()));
            match resp {
                Some(Ok(msg)) => match msg {
                    Msg::EstimateOk {
                        id: rid,
                        value_bits,
                        generation,
                        batch,
                    } => {
                        if rid != id {
                            self.conn = None;
                            return Err(ClientError::Protocol("response id mismatch"));
                        }
                        self.stats.ok += 1;
                        return Ok(Estimate {
                            value: f64::from_bits(value_bits),
                            generation,
                            batch_size: batch as usize,
                        });
                    }
                    Msg::Shed { .. } => {
                        self.stats.shed += 1;
                        return Err(ClientError::Shed);
                    }
                    Msg::Rejected { expected, got, .. } => {
                        return Err(ClientError::Rejected { expected, got });
                    }
                    Msg::Unavailable { reason, .. } => {
                        // Not-primary / draining: try the other endpoint.
                        saw_unavailable = true;
                        last_err = Some(format!("unavailable: {reason:?}"));
                        self.rotate();
                        continue;
                    }
                    _ => {
                        self.conn = None;
                        return Err(ClientError::Protocol("unexpected response"));
                    }
                },
                Some(Err(e)) => {
                    self.stats.net_errors += 1;
                    last_err = Some(e.to_string());
                    self.rotate();
                    continue;
                }
                None => {
                    last_err = Some("no connection".into());
                    continue;
                }
            }
        }
        if saw_unavailable && last_err.as_deref().unwrap_or("").starts_with("unavailable") {
            Err(ClientError::Unavailable)
        } else {
            Err(ClientError::Disconnected(
                last_err.unwrap_or_else(|| "retries exhausted".into()),
            ))
        }
    }
}
