//! Real-socket transport. This is the **only** module in the workspace
//! allowed to open raw sockets (enforced by a grep lint in `ci.sh`, the
//! same way direct filesystem access is confined to the Vfs module) —
//! everything above it speaks [`ByteStream`], so the protocol stack cannot
//! bypass the deadline and fault-injection seams.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use super::client::Dialer;
use super::conn::ByteStream;
use super::NetError;

fn map_io(e: std::io::Error) -> NetError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => NetError::TimedOut,
        ErrorKind::BrokenPipe
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::UnexpectedEof
        | ErrorKind::NotConnected => NetError::Cut(e.to_string()),
        _ => NetError::Io(e.to_string()),
    }
}

/// A connected TCP socket behind the [`ByteStream`] seam.
pub struct TcpByteStream {
    stream: TcpStream,
}

impl TcpByteStream {
    fn new(stream: TcpStream) -> Result<Self, NetError> {
        // Frames are single writes; Nagle only adds latency here.
        stream.set_nodelay(true).map_err(map_io)?;
        Ok(Self { stream })
    }
}

impl ByteStream for TcpByteStream {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), NetError> {
        self.stream.write_all(buf).map_err(map_io)
    }

    fn read_some(&mut self, buf: &mut [u8]) -> Result<usize, NetError> {
        self.stream.read(buf).map_err(map_io)
    }

    fn set_read_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(d).map_err(map_io)
    }

    fn set_write_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_write_timeout(d).map_err(map_io)
    }

    fn try_clone(&self) -> Result<Box<dyn ByteStream>, NetError> {
        let stream = self.stream.try_clone().map_err(map_io)?;
        Ok(Box::new(TcpByteStream { stream }))
    }

    fn shutdown(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// Dial `addr` with a connect timeout.
pub fn dial(addr: &str, timeout: Duration) -> Result<TcpByteStream, NetError> {
    let sockaddr = addr
        .to_socket_addrs()
        .map_err(map_io)?
        .next()
        .ok_or_else(|| NetError::Io(format!("unresolvable address {addr}")))?;
    let stream = TcpStream::connect_timeout(&sockaddr, timeout).map_err(map_io)?;
    TcpByteStream::new(stream)
}

/// [`Dialer`] over a fixed endpoint list (primary first, then standbys).
pub struct TcpDialer {
    pub endpoints: Vec<String>,
    pub connect_timeout: Duration,
}

impl Dialer for TcpDialer {
    fn endpoints(&self) -> usize {
        self.endpoints.len()
    }

    fn dial(&mut self, endpoint: usize) -> Result<Box<dyn ByteStream>, NetError> {
        let addr = self
            .endpoints
            .get(endpoint)
            .ok_or_else(|| NetError::Io("endpoint index out of range".into()))?;
        Ok(Box::new(dial(addr, self.connect_timeout)?))
    }
}

/// A polling accept loop: non-blocking listener checked every few
/// milliseconds so the server's stop flag is honored without needing a
/// self-connect wakeup.
pub struct Listener {
    inner: TcpListener,
    addr: String,
}

impl Listener {
    pub fn bind(addr: &str) -> Result<Self, NetError> {
        let inner = TcpListener::bind(addr).map_err(map_io)?;
        inner.set_nonblocking(true).map_err(map_io)?;
        let addr = inner
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string());
        Ok(Self { inner, addr })
    }

    /// The bound address (with the OS-assigned port when `addr` had `:0`).
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Wait up to `timeout` for one connection; `Ok(None)` on timeout.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<Option<TcpByteStream>, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.inner.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).map_err(map_io)?;
                    return Ok(Some(TcpByteStream::new(stream)?));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(map_io(e)),
            }
        }
    }
}
