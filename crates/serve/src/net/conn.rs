//! Transport abstraction and CRC framing.
//!
//! [`ByteStream`] is the narrow waist every byte on the wire goes through —
//! TCP sockets ([`super::tcp`]), in-memory pipes ([`mem_pair`]), and the
//! [`FailpointNet`] fault injector all implement it, so the whole protocol
//! stack (framing, server handler, client retry loop, replication shipper)
//! is exercised identically under real sockets and injected faults.
//!
//! [`FrameConn`] speaks the same `[len u32][crc32 u32][payload]` framing as
//! the durability layer (`warper_durable::frame`), with the length field
//! checked against [`MAX_NET_FRAME`] *before* the payload buffer is
//! allocated — a hostile header cannot balloon memory.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use warper_durable::frame::crc32;

use super::codec::{self, Msg, MAX_NET_FRAME};
use super::NetError;

/// A bidirectional byte pipe with deadlines. `read_some` returning `Ok(0)`
/// is clean EOF; errors are already mapped to [`NetError`].
pub trait ByteStream: Send {
    /// Write the whole buffer (or fail).
    fn write_all(&mut self, buf: &[u8]) -> Result<(), NetError>;
    /// Read up to `buf.len()` bytes; `Ok(0)` means the peer closed.
    fn read_some(&mut self, buf: &mut [u8]) -> Result<usize, NetError>;
    /// Deadline applied to each subsequent read (`None` = wait forever).
    fn set_read_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError>;
    /// Deadline applied to each subsequent write.
    fn set_write_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError>;
    /// An independently usable handle to the same connection (for
    /// concurrent read/write halves). Clones share the underlying link.
    fn try_clone(&self) -> Result<Box<dyn ByteStream>, NetError>;
    /// Best-effort immediate teardown; the peer sees EOF/reset.
    fn shutdown(&self);
}

impl ByteStream for Box<dyn ByteStream> {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), NetError> {
        (**self).write_all(buf)
    }
    fn read_some(&mut self, buf: &mut [u8]) -> Result<usize, NetError> {
        (**self).read_some(buf)
    }
    fn set_read_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError> {
        (**self).set_read_deadline(d)
    }
    fn set_write_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError> {
        (**self).set_write_deadline(d)
    }
    fn try_clone(&self) -> Result<Box<dyn ByteStream>, NetError> {
        (**self).try_clone()
    }
    fn shutdown(&self) {
        (**self).shutdown()
    }
}

/// Framed message transport over any [`ByteStream`].
pub struct FrameConn<S: ByteStream> {
    stream: S,
}

impl<S: ByteStream> FrameConn<S> {
    pub fn new(stream: S) -> Self {
        Self { stream }
    }

    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Encode and send one message as a single frame (one write).
    pub fn send(&mut self, msg: &Msg) -> Result<(), NetError> {
        let payload = codec::encode(msg);
        if payload.len() as u64 > u64::from(MAX_NET_FRAME) {
            return Err(NetError::Corrupt("outgoing frame over cap"));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.stream.write_all(&frame)
    }

    /// Receive one message. EOF at a frame boundary is [`NetError::Closed`];
    /// EOF mid-frame is a [`NetError::Cut`]; a length over
    /// [`MAX_NET_FRAME`] or a checksum/decode failure is
    /// [`NetError::Corrupt`] — checked before the payload is allocated.
    pub fn recv(&mut self) -> Result<Msg, NetError> {
        let mut header = [0u8; 8];
        self.read_exact(&mut header, true)?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len > MAX_NET_FRAME {
            return Err(NetError::Corrupt("frame length over cap"));
        }
        let mut payload = vec![0u8; len as usize];
        self.read_exact(&mut payload, false)?;
        if crc32(&payload) != crc {
            return Err(NetError::Corrupt("frame checksum mismatch"));
        }
        codec::decode(&payload).map_err(NetError::Corrupt)
    }

    fn read_exact(&mut self, buf: &mut [u8], at_boundary: bool) -> Result<(), NetError> {
        let mut got = 0;
        while got < buf.len() {
            match self.stream.read_some(&mut buf[got..])? {
                0 => {
                    return Err(if at_boundary && got == 0 {
                        NetError::Closed
                    } else {
                        NetError::Cut("eof mid-frame".into())
                    })
                }
                n => got += n,
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// In-memory duplex pipe
// ---------------------------------------------------------------------------

#[derive(Default)]
struct PipeBuf {
    data: VecDeque<u8>,
    closed: bool,
}

type Pipe = Arc<(Mutex<PipeBuf>, Condvar)>;

fn close_pipe(p: &Pipe) {
    let mut g = p.0.lock().unwrap_or_else(PoisonError::into_inner);
    g.closed = true;
    p.1.notify_all();
}

/// Closes both directions when the last clone of an endpoint drops, so the
/// peer sees EOF just like a dropped socket.
struct EndpointAlive {
    tx: Pipe,
    rx: Pipe,
}

impl Drop for EndpointAlive {
    fn drop(&mut self) {
        close_pipe(&self.tx);
        close_pipe(&self.rx);
    }
}

/// One endpoint of an in-memory duplex byte pipe (see [`mem_pair`]).
/// Deterministic and allocation-bounded; used by the protocol tests so the
/// whole server/client/replication stack runs without sockets.
pub struct MemStream {
    tx: Pipe,
    rx: Pipe,
    read_deadline: Option<Duration>,
    write_deadline: Option<Duration>,
    alive: Arc<EndpointAlive>,
}

/// A connected pair of in-memory streams: bytes written to one are read
/// from the other.
pub fn mem_pair() -> (MemStream, MemStream) {
    let ab: Pipe = Arc::default();
    let ba: Pipe = Arc::default();
    let a = MemStream {
        tx: Arc::clone(&ab),
        rx: Arc::clone(&ba),
        read_deadline: None,
        write_deadline: None,
        alive: Arc::new(EndpointAlive {
            tx: Arc::clone(&ab),
            rx: Arc::clone(&ba),
        }),
    };
    let b = MemStream {
        tx: ba.clone(),
        rx: ab.clone(),
        read_deadline: None,
        write_deadline: None,
        alive: Arc::new(EndpointAlive { tx: ba, rx: ab }),
    };
    (a, b)
}

impl ByteStream for MemStream {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), NetError> {
        let _ = self.write_deadline; // writes to memory never block
        let mut g = self.tx.0.lock().unwrap_or_else(PoisonError::into_inner);
        if g.closed {
            return Err(NetError::Cut("peer closed".into()));
        }
        g.data.extend(buf);
        self.tx.1.notify_all();
        Ok(())
    }

    fn read_some(&mut self, buf: &mut [u8]) -> Result<usize, NetError> {
        if buf.is_empty() {
            return Ok(0);
        }
        let deadline = self.read_deadline.map(|d| Instant::now() + d);
        let mut g = self.rx.0.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !g.data.is_empty() {
                let n = buf.len().min(g.data.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = g.data.pop_front().unwrap_or_default();
                }
                return Ok(n);
            }
            if g.closed {
                return Ok(0);
            }
            g = match deadline {
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return Err(NetError::TimedOut);
                    }
                    let (g2, timeout) = self
                        .rx
                        .1
                        .wait_timeout(g, dl - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    if timeout.timed_out() && g2.data.is_empty() && !g2.closed {
                        return Err(NetError::TimedOut);
                    }
                    g2
                }
                None => self.rx.1.wait(g).unwrap_or_else(PoisonError::into_inner),
            };
        }
    }

    fn set_read_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError> {
        self.read_deadline = d;
        Ok(())
    }

    fn set_write_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError> {
        self.write_deadline = d;
        Ok(())
    }

    fn try_clone(&self) -> Result<Box<dyn ByteStream>, NetError> {
        Ok(Box::new(MemStream {
            tx: Arc::clone(&self.tx),
            rx: Arc::clone(&self.rx),
            read_deadline: self.read_deadline,
            write_deadline: self.write_deadline,
            alive: Arc::clone(&self.alive),
        }))
    }

    fn shutdown(&self) {
        close_pipe(&self.tx);
        close_pipe(&self.rx);
    }
}

// ---------------------------------------------------------------------------
// Link fault injection
// ---------------------------------------------------------------------------

/// What goes wrong at the scheduled operation (mirrors `FailKind` in
/// `warper_durable::vfs` for the link instead of the disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// The link dies: this op and every later one fails, the peer sees EOF.
    Cut,
    /// The op stalls past its deadline (surfaces as [`NetError::TimedOut`];
    /// the link stays up).
    Delay,
    /// A write transmits only half its bytes, then the link dies — the peer
    /// sees a torn frame. On a read op this degrades to a cut.
    Torn,
    /// The op's bytes are bit-flipped in flight; the link stays up and the
    /// receiver's CRC must catch it.
    Garbage,
}

/// Fire `kind` at the `at_op`-th byte-stream operation (0-based, reads and
/// writes both count; clones share the counter).
#[derive(Debug, Clone, Copy)]
pub struct NetFailPlan {
    pub at_op: u64,
    pub kind: NetFaultKind,
}

struct FpState {
    ops: u64,
    plan: Option<NetFailPlan>,
    cut: bool,
}

/// Deterministic link-fault injector wrapping any [`ByteStream`] — the
/// network mirror of `FailpointVfs`. Without a plan it just counts ops, so
/// a passing run's op count becomes the sweep bound for kill-at-every-op
/// tests (`tests/net_failover.rs`).
pub struct FailpointNet<S: ByteStream> {
    inner: S,
    state: Arc<Mutex<FpState>>,
}

impl<S: ByteStream> FailpointNet<S> {
    /// Counting mode: no fault, just tally ops.
    pub fn new(inner: S) -> Self {
        Self::with_state(inner, None)
    }

    /// Fire `plan` when its op comes up.
    pub fn with_plan(inner: S, plan: NetFailPlan) -> Self {
        Self::with_state(inner, Some(plan))
    }

    fn with_state(inner: S, plan: Option<NetFailPlan>) -> Self {
        Self {
            inner,
            state: Arc::new(Mutex::new(FpState {
                ops: 0,
                plan,
                cut: false,
            })),
        }
    }

    /// Operations observed so far (shared across clones).
    pub fn ops(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .ops
    }

    /// Whether the injected fault has already fired a cut.
    pub fn is_cut(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .cut
    }

    /// Check the gate for the next op: `None` = proceed, `Some(kind)` =
    /// this op is the scheduled fault.
    fn gate(&self) -> Result<Option<NetFaultKind>, NetError> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.cut {
            return Err(NetError::Cut("link cut by failpoint".into()));
        }
        let op = st.ops;
        st.ops += 1;
        match st.plan {
            Some(plan) if plan.at_op == op => {
                if matches!(plan.kind, NetFaultKind::Cut | NetFaultKind::Torn) {
                    st.cut = true;
                }
                Ok(Some(plan.kind))
            }
            _ => Ok(None),
        }
    }
}

impl<S: ByteStream> ByteStream for FailpointNet<S> {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), NetError> {
        match self.gate()? {
            None => self.inner.write_all(buf),
            Some(NetFaultKind::Cut) => {
                self.inner.shutdown();
                Err(NetError::Cut("link cut by failpoint".into()))
            }
            Some(NetFaultKind::Delay) => Err(NetError::TimedOut),
            Some(NetFaultKind::Torn) => {
                let _ = self.inner.write_all(&buf[..buf.len() / 2]);
                self.inner.shutdown();
                Err(NetError::Cut("torn write by failpoint".into()))
            }
            Some(NetFaultKind::Garbage) => {
                let mut garbled = buf.to_vec();
                if let Some(b) = garbled.get_mut(buf.len() / 2) {
                    *b ^= 0x40;
                }
                self.inner.write_all(&garbled)
            }
        }
    }

    fn read_some(&mut self, buf: &mut [u8]) -> Result<usize, NetError> {
        match self.gate()? {
            None => self.inner.read_some(buf),
            Some(NetFaultKind::Cut) | Some(NetFaultKind::Torn) => {
                self.inner.shutdown();
                Err(NetError::Cut("link cut by failpoint".into()))
            }
            Some(NetFaultKind::Delay) => Err(NetError::TimedOut),
            Some(NetFaultKind::Garbage) => {
                let n = self.inner.read_some(buf)?;
                if n > 0 {
                    buf[n / 2] ^= 0x40;
                }
                Ok(n)
            }
        }
    }

    fn set_read_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError> {
        self.inner.set_read_deadline(d)
    }

    fn set_write_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError> {
        self.inner.set_write_deadline(d)
    }

    fn try_clone(&self) -> Result<Box<dyn ByteStream>, NetError> {
        Ok(Box::new(FailpointNet {
            inner: self.inner.try_clone()?,
            state: Arc::clone(&self.state),
        }))
    }

    fn shutdown(&self) {
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::codec::Role;

    #[test]
    fn mem_pipe_frames_roundtrip() {
        let (a, b) = mem_pair();
        let mut ca = FrameConn::new(a);
        let mut cb = FrameConn::new(b);
        let msg = Msg::EstimateReq {
            id: 1,
            features: vec![0.5; 8],
        };
        ca.send(&msg).unwrap();
        assert_eq!(cb.recv().unwrap(), msg);
        // Clean close at a boundary surfaces as Closed.
        drop(ca);
        assert_eq!(cb.recv(), Err(NetError::Closed));
    }

    #[test]
    fn mem_pipe_read_deadline_fires() {
        let (a, mut b) = mem_pair();
        b.set_read_deadline(Some(Duration::from_millis(20)))
            .unwrap();
        let mut buf = [0u8; 4];
        let t0 = Instant::now();
        assert_eq!(b.read_some(&mut buf), Err(NetError::TimedOut));
        assert!(t0.elapsed() < Duration::from_secs(2));
        drop(a);
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let (mut a, b) = mem_pair();
        let mut header = Vec::new();
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        a.write_all(&header).unwrap();
        let mut cb = FrameConn::new(b);
        assert_eq!(cb.recv(), Err(NetError::Corrupt("frame length over cap")));
    }

    #[test]
    fn garbage_fault_is_caught_by_crc() {
        let (a, b) = mem_pair();
        let mut ca = FrameConn::new(FailpointNet::with_plan(
            a,
            NetFailPlan {
                at_op: 0,
                kind: NetFaultKind::Garbage,
            },
        ));
        let mut cb = FrameConn::new(b);
        ca.send(&Msg::Shed { id: 3 }).unwrap(); // sender sees success
        match cb.recv() {
            Err(NetError::Corrupt(_)) => {}
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn torn_write_surfaces_as_cut_frame_on_peer() {
        let (a, b) = mem_pair();
        let mut ca = FrameConn::new(FailpointNet::with_plan(
            a,
            NetFailPlan {
                at_op: 0,
                kind: NetFaultKind::Torn,
            },
        ));
        let mut cb = FrameConn::new(b);
        assert!(ca.send(&Msg::Shed { id: 3 }).is_err());
        match cb.recv() {
            Err(NetError::Cut(_)) | Err(NetError::Closed) => {}
            other => panic!("expected cut/closed, got {other:?}"),
        }
    }

    #[test]
    fn cut_fault_poisons_all_later_ops() {
        let (a, _b) = mem_pair();
        let mut fp = FailpointNet::with_plan(
            a,
            NetFailPlan {
                at_op: 0,
                kind: NetFaultKind::Cut,
            },
        );
        assert!(fp.write_all(&[1]).is_err());
        assert!(fp.write_all(&[2]).is_err());
        let mut buf = [0u8; 1];
        assert!(fp.read_some(&mut buf).is_err());
        assert!(fp.is_cut());
    }

    #[test]
    fn counting_mode_tallies_ops() {
        let (a, b) = mem_pair();
        let mut ca = FrameConn::new(FailpointNet::new(a));
        let mut cb = FrameConn::new(b);
        ca.send(&Msg::Hello {
            role: Role::Client,
            proto: 1,
        })
        .unwrap();
        cb.recv().unwrap();
        assert!(ca.stream().ops() >= 1);
    }
}
