//! The multithreaded estimation service.
//!
//! Requests enter through a clonable [`ServiceHandle`], wait in the bounded
//! [`BatchQueue`], and are answered by a pool of worker threads that pop a
//! micro-batch, resolve the current [`ModelSnapshot`] once, and run the
//! model's batched `estimate_many` path — one GEMM per layer for the whole
//! batch instead of a matrix-vector product per request. Admission control
//! is the queue bound: a full queue sheds the request immediately
//! ([`ServeError::Shed`]) rather than letting latency grow without bound.
//!
//! No async runtime: everything is `std` threads, a condvar-backed queue,
//! and a condvar-backed response slot per request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::queue::{BatchQueue, PushError};
use crate::snapshot::{ModelSnapshot, SnapshotCell, SnapshotReader};

/// Service shape knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads answering requests.
    pub workers: usize,
    /// Queue bound: requests beyond this are shed.
    pub queue_capacity: usize,
    /// Largest micro-batch a worker hands to the model at once.
    pub max_batch: usize,
    /// How long a worker lingers for a fuller batch after the first
    /// request arrives. Zero disables batching-by-waiting (batches still
    /// form from whatever is already queued).
    pub batch_linger: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 1024,
            max_batch: 64,
            batch_linger: Duration::from_micros(200),
        }
    }
}

/// A successful estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The model's cardinality estimate.
    pub value: f64,
    /// Generation of the snapshot that served it (staleness = current cell
    /// version minus this).
    pub generation: u64,
    /// Size of the micro-batch this request rode in.
    pub batch_size: usize,
}

/// Why a request was not answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control: the queue was full.
    Shed,
    /// The service is shutting down.
    Closed,
    /// The request's feature vector does not match the model.
    FeatureDim {
        /// The serving model's feature dimension.
        expected: usize,
        /// The request's feature count.
        got: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed => write!(f, "request shed (queue full)"),
            ServeError::Closed => write!(f, "service closed"),
            ServeError::FeatureDim { expected, got } => {
                write!(
                    f,
                    "feature dim mismatch: model expects {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A one-shot rendezvous the worker fills and the requester waits on.
struct ResponseSlot {
    result: Mutex<Option<Result<Estimate, ServeError>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, value: Result<Estimate, ServeError>) {
        let mut slot = self.result.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Some(value);
        drop(slot);
        self.ready.notify_one();
    }

    fn wait(&self) -> Result<Estimate, ServeError> {
        let mut slot = self.result.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(res) = slot.take() {
                return res;
            }
            slot = self
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct Request {
    features: Vec<f64>,
    slot: Arc<ResponseSlot>,
}

/// Lifetime counters, updated lock-free by workers and handles.
#[derive(Default)]
struct Counters {
    served: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    inference_nanos: AtomicU64,
    deadline_trips: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests answered with an estimate.
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests rejected for a feature-dimension mismatch.
    pub rejected: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests that rode in those batches (mean batch size =
    /// `batched_requests / batches`).
    pub batched_requests: u64,
    /// Wall-clock nanoseconds workers spent inside the model's
    /// `estimate_many` (the GEMM time). End-to-end latency minus this is
    /// queueing + batching + response delivery, which is what makes kernel
    /// wins attributable in the serve benchmarks.
    pub inference_nanos: u64,
    /// Connection-level read/write deadline expiries recorded by the
    /// network front-end (see `net::server`). Zero for in-process serving.
    pub deadline_trips: u64,
}

impl ServiceStats {
    /// Mean micro-batch size over the service lifetime.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Mean microseconds of model inference per micro-batch.
    pub fn mean_inference_micros_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.inference_nanos as f64 / 1_000.0 / self.batches as f64
        }
    }

    /// Mean microseconds of model inference attributed to each served
    /// request (batch inference time divided across the batch).
    pub fn mean_inference_micros_per_request(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.inference_nanos as f64 / 1_000.0 / self.served as f64
        }
    }
}

/// The running service: worker threads + the queue they drain.
///
/// Dropping the service closes the queue and joins the workers; in-flight
/// requests are answered first (drain-then-exit).
pub struct EstimationService {
    queue: Arc<BatchQueue<Request>>,
    counters: Arc<Counters>,
    workers: Vec<JoinHandle<()>>,
}

impl EstimationService {
    /// Starts `cfg.workers` threads serving from `cell`.
    pub fn start(cell: Arc<SnapshotCell<ModelSnapshot>>, cfg: ServiceConfig) -> Self {
        let queue = Arc::new(BatchQueue::new(cfg.queue_capacity));
        let counters = Arc::new(Counters::default());
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                let reader = SnapshotReader::new(Arc::clone(&cell));
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(queue, reader, counters, cfg))
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            queue,
            counters,
            workers,
        }
    }

    /// A clonable handle for submitting requests.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            queue: Arc::clone(&self.queue),
            counters: Arc::clone(&self.counters),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            served: self.counters.served.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            batched_requests: self.counters.batched_requests.load(Ordering::Relaxed),
            inference_nanos: self.counters.inference_nanos.load(Ordering::Relaxed),
            deadline_trips: self.counters.deadline_trips.load(Ordering::Relaxed),
        }
    }

    /// Closes the queue, drains in-flight requests, and joins the workers.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            // A worker that panicked already poisoned nothing we rely on;
            // surface the panic to the caller.
            if let Err(e) = w.join() {
                std::panic::resume_unwind(e);
            }
        }
    }
}

impl Drop for EstimationService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(
    queue: Arc<BatchQueue<Request>>,
    mut reader: SnapshotReader<ModelSnapshot>,
    counters: Arc<Counters>,
    cfg: ServiceConfig,
) {
    let mut batch: Vec<Request> = Vec::with_capacity(cfg.max_batch);
    while queue.pop_batch(cfg.max_batch, cfg.batch_linger, &mut batch) {
        let (_, snap) = reader.current();
        let generation = snap.generation;
        let expected = snap.model.feature_dim();
        // Reject dimension mismatches individually; batch the rest.
        let mut ok: Vec<Request> = Vec::with_capacity(batch.len());
        for req in batch.drain(..) {
            if req.features.len() == expected {
                ok.push(req);
            } else {
                counters.rejected.fetch_add(1, Ordering::Relaxed);
                req.slot.fill(Err(ServeError::FeatureDim {
                    expected,
                    got: req.features.len(),
                }));
            }
        }
        if ok.is_empty() {
            continue;
        }
        let refs: Vec<&[f64]> = ok.iter().map(|r| r.features.as_slice()).collect();
        let t0 = Instant::now();
        let values = snap.model.estimate_many(&refs);
        counters
            .inference_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let batch_size = ok.len();
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .batched_requests
            .fetch_add(batch_size as u64, Ordering::Relaxed);
        counters
            .served
            .fetch_add(batch_size as u64, Ordering::Relaxed);
        for (req, value) in ok.into_iter().zip(values) {
            req.slot.fill(Ok(Estimate {
                value,
                generation,
                batch_size,
            }));
        }
    }
}

/// A clonable submission handle. `estimate` blocks the calling thread until
/// the answer arrives (or the request is shed/rejected immediately).
#[derive(Clone)]
pub struct ServiceHandle {
    queue: Arc<BatchQueue<Request>>,
    counters: Arc<Counters>,
}

impl ServiceHandle {
    /// Submits one request and waits for its estimate.
    pub fn estimate(&self, features: Vec<f64>) -> Result<Estimate, ServeError> {
        let slot = Arc::new(ResponseSlot::new());
        let req = Request {
            features,
            slot: Arc::clone(&slot),
        };
        match self.queue.try_push(req) {
            Ok(()) => slot.wait(),
            Err(PushError::Full(_)) => {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Shed)
            }
            Err(PushError::Closed(_)) => Err(ServeError::Closed),
        }
    }

    /// Records one connection-level deadline expiry. The network front-end
    /// calls this so transport-induced drops show up next to shed/rejected
    /// in [`ServiceStats`] instead of vanishing with the connection.
    pub fn note_deadline_trip(&self) {
        self.counters.deadline_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time counters (same snapshot [`EstimationService::stats`]
    /// takes; exposed on the handle for components that only hold one).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            served: self.counters.served.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            batched_requests: self.counters.batched_requests.load(Ordering::Relaxed),
            inference_nanos: self.counters.inference_nanos.load(Ordering::Relaxed),
            deadline_trips: self.counters.deadline_trips.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warper_ce::{CardinalityEstimator, LabeledExample, UpdateKind};

    /// `estimate = scale · (1 + Σf)` — cheap, deterministic, snapshotable.
    #[derive(Clone)]
    struct ToyModel {
        dim: usize,
        scale: f64,
    }

    impl CardinalityEstimator for ToyModel {
        fn feature_dim(&self) -> usize {
            self.dim
        }
        fn estimate(&self, f: &[f64]) -> f64 {
            self.scale * (1.0 + f.iter().sum::<f64>())
        }
        fn fit(&mut self, _e: &[LabeledExample]) {}
        fn update(&mut self, _e: &[LabeledExample]) {}
        fn update_kind(&self) -> UpdateKind {
            UpdateKind::FineTune
        }
        fn name(&self) -> &'static str {
            "toy"
        }
    }

    fn toy_cell(scale: f64) -> Arc<SnapshotCell<ModelSnapshot>> {
        Arc::new(SnapshotCell::new(ModelSnapshot::initial(Box::new(
            ToyModel { dim: 3, scale },
        ))))
    }

    #[test]
    fn serves_correct_estimates_from_many_threads() {
        let cell = toy_cell(10.0);
        let service = EstimationService::start(Arc::clone(&cell), ServiceConfig::default());
        let handle = service.handle();
        std::thread::scope(|s| {
            for c in 0..4 {
                let h = handle.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        let f = vec![(c * 200 + i) as f64, 0.0, 1.0];
                        let want = 10.0 * (1.0 + f.iter().sum::<f64>());
                        let est = h.estimate(f).unwrap();
                        assert_eq!(est.value, want);
                        assert_eq!(est.generation, 0);
                        assert!(est.batch_size >= 1);
                    }
                });
            }
        });
        let stats = service.shutdown();
        assert_eq!(stats.served, 800);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.batched_requests, 800);
    }

    #[test]
    fn feature_dim_mismatch_is_rejected_per_request() {
        let cell = toy_cell(1.0);
        let service = EstimationService::start(cell, ServiceConfig::default());
        let handle = service.handle();
        assert_eq!(
            handle.estimate(vec![0.0; 5]),
            Err(ServeError::FeatureDim {
                expected: 3,
                got: 5
            })
        );
        assert!(handle.estimate(vec![0.0; 3]).is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn requests_after_shutdown_are_closed_not_hung() {
        let cell = toy_cell(1.0);
        let service = EstimationService::start(cell, ServiceConfig::default());
        let handle = service.handle();
        drop(service);
        assert_eq!(handle.estimate(vec![0.0; 3]), Err(ServeError::Closed));
    }

    #[test]
    fn published_snapshot_takes_over_new_requests() {
        let cell = toy_cell(1.0);
        let service = EstimationService::start(Arc::clone(&cell), ServiceConfig::default());
        let handle = service.handle();
        assert_eq!(handle.estimate(vec![0.0; 3]).unwrap().value, 1.0);
        cell.publish(ModelSnapshot {
            generation: 1,
            model: Box::new(ToyModel { dim: 3, scale: 5.0 }),
            precision: warper_ce::Precision::F64,
        });
        let est = handle.estimate(vec![0.0; 3]).unwrap();
        assert_eq!(est.value, 5.0);
        assert_eq!(est.generation, 1);
    }

    #[test]
    fn tiny_queue_sheds_under_burst_but_never_errors() {
        let cell = toy_cell(1.0);
        let service = EstimationService::start(
            cell,
            ServiceConfig {
                workers: 1,
                queue_capacity: 2,
                max_batch: 2,
                batch_linger: Duration::from_millis(2),
            },
        );
        let handle = service.handle();
        let shed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = handle.clone();
                let shed = &shed;
                s.spawn(move || {
                    for _ in 0..50 {
                        match h.estimate(vec![0.5; 3]) {
                            Ok(est) => assert!(est.value.is_finite()),
                            Err(ServeError::Shed) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                });
            }
        });
        let stats = service.shutdown();
        assert_eq!(stats.served + stats.shed, 400);
        assert_eq!(stats.shed, shed.load(Ordering::Relaxed));
    }
}
