//! Write-ahead log of annotation observations between checkpoints.
//!
//! File layout: an 8-byte magic followed by CRC-framed records (see
//! [`crate::frame`]), each payload a JSON-encoded [`WalRecord`]. A record is
//! *acknowledged* — and only then may the caller treat the label as durable
//! — once both the append and the following fsync succeed. On an append
//! failure the writer truncate-repairs the file back to its last good
//! length, so one torn record never poisons the records that follow it.
//!
//! Reading tolerates arbitrary garbage tails: decoding stops at the first
//! corrupt frame and reports the byte offset of the last good record, which
//! recovery uses to resume appending on the repaired prefix.

use serde::{Deserialize, Serialize};

use crate::frame::{decode_frame, encode_frame, FrameDecode};
use crate::vfs::{Vfs, VfsError};
use crate::DurabilityError;

/// Magic prefix of every WAL file ("WARPWAL" + format version 1).
pub const WAL_MAGIC: &[u8; 8] = b"WARPWAL1";

/// One durable observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A ground-truth label the annotator paid for (or observed on an
    /// arrival). `arrival` distinguishes labeled arrivals from committed
    /// pool additions; both replay identically.
    Label {
        features: Vec<f64>,
        gt: f64,
        arrival: bool,
    },
}

/// Outcome of scanning a WAL file.
#[derive(Debug)]
pub struct WalReadout {
    /// Every record up to the first corruption.
    pub records: Vec<WalRecord>,
    /// Byte offset just past the last good record (where appends resume).
    pub good_len: u64,
    /// Whether a garbage tail (or bad magic) was found past `good_len`.
    pub truncated: bool,
}

/// Scan `name`, decoding records until EOF or the first corrupt frame.
pub fn read_wal(vfs: &dyn Vfs, name: &str) -> Result<WalReadout, DurabilityError> {
    let data = vfs.read(name)?;
    if data.len() < WAL_MAGIC.len() || &data[..WAL_MAGIC.len()] != WAL_MAGIC {
        // Unrecognizable file: nothing salvageable, not even the magic.
        return Ok(WalReadout {
            records: Vec::new(),
            good_len: 0,
            truncated: true,
        });
    }
    let mut offset = WAL_MAGIC.len();
    let mut records = Vec::new();
    let mut truncated = false;
    loop {
        match decode_frame(&data[offset..]) {
            FrameDecode::CleanEof => break,
            FrameDecode::Corrupt(_) => {
                truncated = true;
                break;
            }
            FrameDecode::Frame { payload, consumed } => {
                match crate::json_from_bytes::<WalRecord>(payload) {
                    Ok(rec) => {
                        records.push(rec);
                        offset += consumed;
                    }
                    Err(_) => {
                        // Checksum-valid but undecodable: treat as the start
                        // of a corrupt tail rather than skipping over it.
                        truncated = true;
                        break;
                    }
                }
            }
        }
    }
    Ok(WalReadout {
        records,
        good_len: offset as u64,
        truncated,
    })
}

/// Appender that tracks the last known-good file length and repairs torn
/// tails before every new record.
pub struct WalWriter {
    name: String,
    good_len: u64,
    /// A failed append may have left garbage; repair before the next write.
    needs_repair: bool,
}

impl WalWriter {
    /// Create a fresh WAL file (truncating any existing one) and make its
    /// header durable. The caller is responsible for the `sync_dir` barrier
    /// that makes the *entry* durable.
    pub fn create(vfs: &dyn Vfs, name: &str) -> Result<Self, DurabilityError> {
        vfs.create(name)?;
        vfs.append(name, WAL_MAGIC)?;
        vfs.fsync(name)?;
        Ok(WalWriter {
            name: name.to_string(),
            good_len: WAL_MAGIC.len() as u64,
            needs_repair: false,
        })
    }

    /// Resume appending to an existing WAL whose scan reported `good_len`.
    /// Any tail past it is truncated away immediately.
    pub fn resume(
        vfs: &dyn Vfs,
        name: &str,
        readout: &WalReadout,
    ) -> Result<Self, DurabilityError> {
        if readout.truncated {
            vfs.truncate(name, readout.good_len)?;
        }
        Ok(WalWriter {
            name: name.to_string(),
            good_len: readout.good_len,
            needs_repair: false,
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append one record and fsync. `Ok` means the record is durable — the
    /// caller may acknowledge the label. On failure the file is repaired
    /// back to its good prefix (immediately if possible, else lazily before
    /// the next append) and the record is NOT acknowledged.
    pub fn append(&mut self, vfs: &dyn Vfs, record: &WalRecord) -> Result<(), DurabilityError> {
        if self.needs_repair {
            vfs.truncate(&self.name, self.good_len)?;
            self.needs_repair = false;
        }
        let payload = crate::json_to_bytes(record).map_err(DurabilityError::Encode)?;
        let frame = encode_frame(&payload);
        match vfs
            .append(&self.name, &frame)
            .and_then(|()| vfs.fsync(&self.name))
        {
            Ok(()) => {
                self.good_len += frame.len() as u64;
                Ok(())
            }
            Err(err) => {
                // Best-effort immediate repair; if the store is dead
                // (power cut) the truncate fails too and repair stays
                // pending for a writer that will never run again.
                if vfs.truncate(&self.name, self.good_len).is_err() {
                    self.needs_repair = true;
                }
                Err(DurabilityError::Vfs(err))
            }
        }
    }
}

/// Decode exactly one framed WAL record from `frame` (as shipped by a
/// replication tap). The frame must carry a checksum-valid, fully decodable
/// record and nothing else — a standby uses this to vet a shipped frame
/// *before* appending it to its local WAL, so a corrupted ship can never
/// poison the replica's tail.
pub fn validate_wal_frame(frame: &[u8]) -> Result<WalRecord, DurabilityError> {
    match decode_frame(frame) {
        FrameDecode::Frame { payload, consumed } if consumed == frame.len() => {
            crate::json_from_bytes::<WalRecord>(payload)
                .map_err(|e| DurabilityError::Corrupt(format!("wal frame undecodable: {e}")))
        }
        FrameDecode::Frame { .. } => Err(DurabilityError::Corrupt(
            "wal frame has trailing bytes".into(),
        )),
        FrameDecode::CleanEof => Err(DurabilityError::Corrupt("empty wal frame".into())),
        FrameDecode::Corrupt(msg) => Err(DurabilityError::Corrupt(format!("wal frame: {msg}"))),
    }
}

/// True if `err` is a missing-file error.
pub fn is_not_found(err: &DurabilityError) -> bool {
    matches!(err, DurabilityError::Vfs(VfsError::NotFound(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn label(x: f64) -> WalRecord {
        WalRecord::Label {
            features: vec![x, x + 0.5],
            gt: 100.0 * x,
            arrival: false,
        }
    }

    #[test]
    fn wal_roundtrip() {
        let vfs = MemVfs::new();
        let mut w = WalWriter::create(&vfs, "wal").unwrap();
        for i in 0..5 {
            w.append(&vfs, &label(i as f64)).unwrap();
        }
        let out = read_wal(&vfs, "wal").unwrap();
        assert_eq!(out.records.len(), 5);
        assert!(!out.truncated);
        assert_eq!(out.records[3], label(3.0));
    }

    #[test]
    fn garbage_tail_is_truncated_at_last_good_record() {
        let vfs = MemVfs::new();
        let mut w = WalWriter::create(&vfs, "wal").unwrap();
        w.append(&vfs, &label(1.0)).unwrap();
        w.append(&vfs, &label(2.0)).unwrap();
        let good = vfs.size("wal").unwrap();
        vfs.append("wal", &[0xDE, 0xAD, 0xBE]).unwrap();

        let out = read_wal(&vfs, "wal").unwrap();
        assert_eq!(out.records.len(), 2);
        assert!(out.truncated);
        assert_eq!(out.good_len, good);

        // Resume repairs the tail and appending continues cleanly.
        let mut w2 = WalWriter::resume(&vfs, "wal", &out).unwrap();
        w2.append(&vfs, &label(3.0)).unwrap();
        let out2 = read_wal(&vfs, "wal").unwrap();
        assert_eq!(out2.records.len(), 3);
        assert!(!out2.truncated);
    }

    #[test]
    fn bad_magic_salvages_nothing() {
        let vfs = MemVfs::new();
        vfs.create("wal").unwrap();
        vfs.append("wal", b"NOTAWAL!rest").unwrap();
        let out = read_wal(&vfs, "wal").unwrap();
        assert!(out.records.is_empty());
        assert!(out.truncated);
        assert_eq!(out.good_len, 0);
    }

    #[test]
    fn failed_append_repairs_and_does_not_ack() {
        use crate::vfs::{FailKind, FailPlan, FailpointVfs};
        let mem = MemVfs::new();
        let mut w = {
            let setup = FailpointVfs::new(mem.clone());
            let mut w = WalWriter::create(&setup, "wal").unwrap();
            w.append(&setup, &label(1.0)).unwrap();
            w
        };
        // Short write on the next append: record 2 must NOT be acked, and
        // record 3 must land cleanly after in-place repair.
        let ops_per_append = 2; // append + fsync
        let fp = FailpointVfs::with_plan(
            mem.clone(),
            FailPlan {
                at_op: 0,
                kind: FailKind::ShortWrite,
            },
        );
        assert!(w.append(&fp, &label(2.0)).is_err());
        w.append(&fp, &label(3.0)).unwrap();
        assert_eq!(fp.ops(), 1 + 1 + ops_per_append); // fault + repair truncate + append/fsync
        let out = read_wal(&mem, "wal").unwrap();
        let recs = out.records;
        assert_eq!(recs, vec![label(1.0), label(3.0)]);
        assert!(!out.truncated);
    }
}
