//! The durable store: atomic checkpoints + WAL rotation + recovery.
//!
//! ## On-disk layout (flat, inside one state directory)
//!
//! ```text
//! snap-00000007.ckpt   magic "WARPSNP1" + frame(WarperState) + frame(Option<ModelBlob>)
//! snap-00000008.ckpt   newest snapshot (last-known-good is the one before)
//! wal-00000007.log     magic "WARPWAL1" + frames of labels since snap 7
//! wal-00000008.log     labels since snap 8 (the live WAL)
//! tmp-snap-*.ckpt      in-flight checkpoint; removed/overwritten on open
//! ```
//!
//! ## Checkpoint protocol (fsync ordering)
//!
//! 1. write `tmp-snap-<n+1>.ckpt` fully, `fsync` it;
//! 2. `rename` it to `snap-<n+1>.ckpt` (atomic replace);
//! 3. create `wal-<n+1>.log` and append the *carry-forward*: every
//!    acknowledged label from the previous WAL that the snapshot's pool did
//!    not absorb (each append fsyncs);
//! 4. one `sync_dir` barrier publishes the rename and the new WAL together;
//! 5. only then does the in-memory store switch to the new sequence, and
//!    snapshots/WALs older than `<n>` are deleted (best-effort).
//!
//! A crash anywhere before step 4 leaves the previous `(snap, wal)` pair
//! durable and complete; a failed checkpoint is retried at the *same*
//! sequence number, so a half-published pair is always rewritten before it
//! can become the recovery source. This is what makes the acked ⇒ durable
//! invariant hold without ever blocking acknowledgements.
//!
//! ## Recovery algorithm
//!
//! 1. delete `tmp-*` strays;
//! 2. walk snapshots newest-first; the first one whose magic, frames,
//!    checksums, deserialization, *and* `WarperState::validate` all pass is
//!    the base (its predecessor existing is what "last-known-good retained"
//!    buys);
//! 3. read its WAL, truncating at the first corrupt record, and replay the
//!    labels into the pool (deduplicating against labels the snapshot
//!    already holds, enforcing `cfg.pool_cap` by the pool's eviction
//!    policy);
//! 4. re-validate and hand the state (plus the deserialized serving model,
//!    when present) to the caller.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use warper_ce::CardinalityEstimator;
use warper_core::WarperState;

use crate::frame::{decode_frame, encode_frame, FrameDecode};
use crate::model_blob::ModelBlob;
use crate::vfs::Vfs;
use crate::wal::{is_not_found, read_wal, WalRecord, WalWriter};
use crate::DurabilityError;

/// Magic prefix of every snapshot file ("WARPSNP" + format version 1).
pub const SNAP_MAGIC: &[u8; 8] = b"WARPSNP1";

fn snap_name(seq: u64) -> String {
    format!("snap-{seq:08}.ckpt")
}

fn tmp_snap_name(seq: u64) -> String {
    format!("tmp-snap-{seq:08}.ckpt")
}

fn wal_name(seq: u64) -> String {
    format!("wal-{seq:08}.log")
}

/// File name of the checkpoint at `seq` — public so a replication standby
/// can mirror the primary's on-disk layout exactly (promotion then reuses
/// the unmodified [`DurableStore::open`] recovery path).
pub fn snap_file_name(seq: u64) -> String {
    snap_name(seq)
}

/// File name of the WAL rotated at checkpoint `seq` (see [`snap_file_name`]).
pub fn wal_file_name(seq: u64) -> String {
    wal_name(seq)
}

fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Durability tunables.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// Supervisor commits between checkpoints (1 = checkpoint every commit).
    pub checkpoint_every: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            checkpoint_every: 4,
        }
    }
}

/// Counters accumulated over a store's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityStats {
    /// Checkpoints successfully published.
    pub checkpoints: usize,
    /// Checkpoint attempts that failed (retried at the next commit).
    pub checkpoint_failures: usize,
    /// Labels acknowledged (durable in the WAL).
    pub wal_appends: usize,
    /// Label appends that failed (not acknowledged).
    pub wal_append_failures: usize,
    /// Labels re-appended into a rotated WAL because the snapshot's pool
    /// had not absorbed them.
    pub carried_forward: usize,
    /// Wall-clock seconds spent writing checkpoints.
    pub checkpoint_secs: f64,
    /// Wall-clock seconds spent appending to the WAL.
    pub wal_secs: f64,
}

/// One durable mutation, observed *after* it is locally durable (fsynced).
/// A replication tap receives these in commit order; the byte payloads are
/// exactly what hit the primary's disk, so a standby that writes them under
/// the same file names reconstructs a byte-identical state directory.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableEvent {
    /// One label frame appended to `wal-<wal_seq>.log`. `frame` is the
    /// CRC32-framed record as written (length + checksum + JSON payload).
    WalAppend {
        /// Sequence of the live WAL the frame went into.
        wal_seq: u64,
        /// The framed bytes appended to that WAL.
        frame: Vec<u8>,
    },
    /// Checkpoint `snap-<seq>.ckpt` published and the WAL rotated to
    /// `wal-<seq>.log`, whose initial contents (after the magic) are the
    /// framed carry-forward records in `carry`.
    Checkpoint {
        /// Sequence of the published snapshot.
        seq: u64,
        /// Full contents of the snapshot file.
        snapshot: Vec<u8>,
        /// Framed carry-forward records seeding the rotated WAL.
        carry: Vec<u8>,
    },
}

/// A replication tap: called synchronously after each durable mutation,
/// while the store's internal order is still the call order.
pub type DurableTap = Box<dyn FnMut(&DurableEvent) + Send>;

/// What recovery found.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Sequence number of the snapshot recovery restored from.
    pub snapshot_seq: u64,
    /// Snapshots that failed checksum/deserialization/validation and were
    /// skipped (newest-first) before a good one was found.
    pub corrupt_snapshots: usize,
    /// WAL records replayed into the pool on top of the snapshot.
    pub wal_records_replayed: usize,
    /// Whether the WAL had a corrupt tail that was truncated away.
    pub wal_truncated: bool,
    /// Wall-clock seconds the whole recovery took.
    pub recovery_secs: f64,
    /// Pool size after replay.
    pub pool_len: usize,
    /// Usable labels in the pool after replay.
    pub pool_labeled: usize,
}

/// A successfully recovered durable image.
pub struct Recovered {
    /// Validated controller state, WAL tail already replayed.
    pub state: WarperState,
    /// The serving CE model, when the snapshot carried one.
    pub model: Option<Box<dyn CardinalityEstimator>>,
    /// What recovery did.
    pub report: RecoveryReport,
}

/// Crash-safe persistence for one Warper instance's adaptation state.
pub struct DurableStore {
    vfs: Arc<dyn Vfs>,
    cfg: DurabilityConfig,
    /// Sequence of the newest published checkpoint (0 = none yet).
    seq: u64,
    wal: WalWriter,
    /// In-memory mirror of the live WAL's records, for carry-forward.
    tail: Vec<WalRecord>,
    commits_since_checkpoint: usize,
    stats: DurabilityStats,
    tap: Option<DurableTap>,
}

impl DurableStore {
    /// Open a state directory: recover the newest valid durable image if
    /// one exists, and position the store to continue appending.
    ///
    /// A fresh (empty) directory yields `None` for the recovery half;
    /// labels appended before the first checkpoint become recoverable once
    /// that checkpoint provides a base state, so callers should checkpoint
    /// the initial state promptly. A directory whose *every* snapshot is
    /// corrupt is an error — silently starting fresh would clobber state
    /// the operator may still want to salvage.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        cfg: DurabilityConfig,
    ) -> Result<(DurableStore, Option<Recovered>), DurabilityError> {
        let t0 = Instant::now();
        let names = vfs.list()?;
        for name in &names {
            if name.starts_with("tmp-") {
                let _ = vfs.remove(name);
            }
        }

        let mut seqs: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_seq(n, "snap-", ".ckpt"))
            .collect();
        seqs.sort_unstable();
        seqs.reverse();

        let mut corrupt_snapshots = 0usize;
        let mut base: Option<(u64, LoadedSnapshot)> = None;
        for &seq in &seqs {
            match load_snapshot(vfs.as_ref(), &snap_name(seq)) {
                Ok((state, model)) => {
                    base = Some((seq, (state, model)));
                    break;
                }
                Err(_) => corrupt_snapshots += 1,
            }
        }

        let Some((seq, (mut state, model))) = base else {
            if corrupt_snapshots > 0 {
                return Err(DurabilityError::Corrupt(format!(
                    "all {corrupt_snapshots} snapshots in the state directory are corrupt"
                )));
            }
            let wal = WalWriter::create(vfs.as_ref(), &wal_name(0))?;
            vfs.sync_dir()?;
            let store = DurableStore {
                vfs,
                cfg,
                seq: 0,
                wal,
                tail: Vec::new(),
                commits_since_checkpoint: 0,
                stats: DurabilityStats::default(),
                tap: None,
            };
            return Ok((store, None));
        };

        // Replay WAL tails. The base snapshot's own WAL holds labels acked
        // since it was published — but when the *newest* snapshot was
        // corrupt and recovery fell back to its predecessor, the labels
        // acked after the newer checkpoint live only in the newer WAL (the
        // rotation carried anything older forward). So every WAL at or
        // above the base sequence is replayed, ascending; deduplication
        // against the pool makes re-reading absorbed records a no-op.
        let mut wal_records_replayed = 0usize;
        let mut wal_truncated = false;
        let mut later_wals: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_seq(n, "wal-", ".log"))
            .filter(|&s| s > seq)
            .collect();
        later_wals.sort_unstable();

        // The live WAL (the base's own). A missing one is possible when
        // directory entries persisted independently (real filesystems may
        // durably publish the snapshot rename without the WAL creation);
        // recreate it empty.
        let wname = wal_name(seq);
        let mut tail = Vec::new();
        let wal = match read_wal(vfs.as_ref(), &wname) {
            Ok(readout) => {
                wal_records_replayed += apply_wal_records(&mut state, &readout.records);
                wal_truncated |= readout.truncated;
                tail = readout.records.clone();
                WalWriter::resume(vfs.as_ref(), &wname, &readout)?
            }
            Err(ref e) if is_not_found(e) => {
                let w = WalWriter::create(vfs.as_ref(), &wname)?;
                vfs.sync_dir()?;
                w
            }
            Err(e) => return Err(e),
        };
        for later in later_wals {
            match read_wal(vfs.as_ref(), &wal_name(later)) {
                Ok(readout) => {
                    wal_records_replayed += apply_wal_records(&mut state, &readout.records);
                    wal_truncated |= readout.truncated;
                    // Replayed-but-unabsorbed labels must survive the next
                    // rotation from this (older) base, so they join the
                    // carry-forward mirror.
                    tail.extend(readout.records);
                }
                Err(ref e) if is_not_found(e) => {}
                Err(e) => return Err(e),
            }
        }
        state.validate().map_err(DurabilityError::State)?;

        let report = RecoveryReport {
            snapshot_seq: seq,
            corrupt_snapshots,
            wal_records_replayed,
            wal_truncated,
            recovery_secs: t0.elapsed().as_secs_f64(),
            pool_len: state.pool.len(),
            pool_labeled: state.pool.labeled_count(None),
        };
        let store = DurableStore {
            vfs,
            cfg,
            seq,
            wal,
            tail,
            commits_since_checkpoint: 0,
            stats: DurabilityStats::default(),
            tap: None,
        };
        Ok((
            store,
            Some(Recovered {
                state,
                model,
                report,
            }),
        ))
    }

    /// Sequence of the newest published checkpoint (0 = none yet).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Install a replication tap. The tap observes every durable mutation
    /// *after* its local fsync succeeds, in commit order, while the caller
    /// still holds whatever lock serializes the store — so the event order
    /// the tap sees is exactly the on-disk order.
    pub fn set_tap(&mut self, tap: DurableTap) {
        self.tap = Some(tap);
    }

    fn emit(&mut self, ev: DurableEvent) {
        if let Some(tap) = self.tap.as_mut() {
            tap(&ev);
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DurabilityStats {
        self.stats
    }

    /// Records in the live WAL (not yet absorbed by a checkpoint).
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// Durably log one ground-truth label. `Ok` *acknowledges* the label:
    /// it is in the WAL and fsynced, and will survive any crash from this
    /// point on. `Err` means the label is NOT durable (the caller may keep
    /// using it in memory; it is simply not crash-protected).
    pub fn append_label(
        &mut self,
        features: &[f64],
        gt: f64,
        arrival: bool,
    ) -> Result<(), DurabilityError> {
        let t0 = Instant::now();
        let rec = WalRecord::Label {
            features: features.to_vec(),
            gt,
            arrival,
        };
        let res = self.wal.append(self.vfs.as_ref(), &rec);
        self.stats.wal_secs += t0.elapsed().as_secs_f64();
        match res {
            Ok(()) => {
                self.stats.wal_appends += 1;
                if self.tap.is_some() {
                    // Re-encode the record for the tap; serde_json is
                    // deterministic, so these bytes match the WAL's.
                    let frame =
                        encode_frame(&crate::json_to_bytes(&rec).map_err(DurabilityError::Encode)?);
                    self.emit(DurableEvent::WalAppend {
                        wal_seq: self.seq,
                        frame,
                    });
                }
                self.tail.push(rec);
                Ok(())
            }
            Err(e) => {
                self.stats.wal_append_failures += 1;
                Err(e)
            }
        }
    }

    /// Count one supervisor commit; checkpoints every
    /// [`DurabilityConfig::checkpoint_every`] commits. Returns whether a
    /// checkpoint was published. A failed checkpoint leaves the commit
    /// counter above the threshold, so the very next commit retries.
    pub fn note_commit(
        &mut self,
        state: &WarperState,
        model: Option<&dyn CardinalityEstimator>,
    ) -> Result<bool, DurabilityError> {
        self.commits_since_checkpoint += 1;
        if self.commits_since_checkpoint >= self.cfg.checkpoint_every.max(1) {
            self.checkpoint(state, model)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Publish an atomic checkpoint of `state` (and the serving model, when
    /// given) and rotate the WAL. See the module docs for the protocol.
    pub fn checkpoint(
        &mut self,
        state: &WarperState,
        model: Option<&dyn CardinalityEstimator>,
    ) -> Result<(), DurabilityError> {
        let t0 = Instant::now();
        let res = self.checkpoint_inner(state, model);
        self.stats.checkpoint_secs += t0.elapsed().as_secs_f64();
        match &res {
            Ok(()) => self.stats.checkpoints += 1,
            Err(_) => self.stats.checkpoint_failures += 1,
        }
        res
    }

    fn checkpoint_inner(
        &mut self,
        state: &WarperState,
        model: Option<&dyn CardinalityEstimator>,
    ) -> Result<(), DurabilityError> {
        let next = self.seq + 1;
        let tmp = tmp_snap_name(next);
        let snap = snap_name(next);

        let mut bytes = SNAP_MAGIC.to_vec();
        let state_json = crate::json_to_bytes(state).map_err(DurabilityError::Encode)?;
        bytes.extend_from_slice(&encode_frame(&state_json));
        let blob = model.and_then(ModelBlob::capture);
        let blob_json = crate::json_to_bytes(&blob).map_err(DurabilityError::Encode)?;
        bytes.extend_from_slice(&encode_frame(&blob_json));

        self.vfs.create(&tmp)?;
        self.vfs.append(&tmp, &bytes)?;
        self.vfs.fsync(&tmp)?;
        self.vfs.rename(&tmp, &snap)?;

        // Rotate the WAL, carrying forward every acked label the snapshot's
        // pool did not absorb — acked ⇒ durable must hold unconditionally,
        // even for labels the controller chose to evict.
        let absorbed: HashSet<LabelKey> = state
            .pool
            .records()
            .iter()
            .filter_map(|r| r.gt.map(|g| label_key(&r.features, g)))
            .collect();
        let carry: Vec<WalRecord> = self
            .tail
            .iter()
            .filter(|rec| {
                let WalRecord::Label { features, gt, .. } = rec;
                !absorbed.contains(&label_key(features, *gt))
            })
            .cloned()
            .collect();
        let mut wal = WalWriter::create(self.vfs.as_ref(), &wal_name(next))?;
        for rec in &carry {
            wal.append(self.vfs.as_ref(), rec)?;
        }

        // One barrier publishes the snapshot rename and the new WAL entry.
        self.vfs.sync_dir()?;

        if self.tap.is_some() {
            let mut carry_bytes = Vec::new();
            for rec in &carry {
                let payload = crate::json_to_bytes(rec).map_err(DurabilityError::Encode)?;
                carry_bytes.extend_from_slice(&encode_frame(&payload));
            }
            self.emit(DurableEvent::Checkpoint {
                seq: next,
                snapshot: bytes,
                carry: carry_bytes,
            });
        }

        self.stats.carried_forward += carry.len();
        self.seq = next;
        self.wal = wal;
        self.tail = carry;
        self.commits_since_checkpoint = 0;

        // Retention: keep <next> and its last-known-good predecessor;
        // everything older goes (best-effort — strays are harmless and
        // re-collected on the next open or checkpoint).
        let keep_from = next.saturating_sub(1);
        if let Ok(names) = self.vfs.list() {
            for name in names {
                let old = parse_seq(&name, "snap-", ".ckpt")
                    .or_else(|| parse_seq(&name, "wal-", ".log"))
                    .is_some_and(|s| s < keep_from);
                if old {
                    let _ = self.vfs.remove(&name);
                }
            }
            let _ = self.vfs.sync_dir();
        }
        Ok(())
    }
}

type LabelKey = (Vec<u64>, u64);

/// A decoded checkpoint: the validated state plus the optional serving
/// model restored from its blob frame.
pub type LoadedSnapshot = (WarperState, Option<Box<dyn CardinalityEstimator>>);

fn label_key(features: &[f64], gt: f64) -> LabelKey {
    (features.iter().map(|v| v.to_bits()).collect(), gt.to_bits())
}

/// Replay WAL labels into a recovered state's pool: finite, dimensionally
/// sane labels only, deduplicated against what the snapshot already holds,
/// with `cfg.pool_cap` enforced through the pool's own eviction policy.
fn apply_wal_records(state: &mut WarperState, records: &[WalRecord]) -> usize {
    let dim = state.encoder.feature_dim();
    let mut seen: HashSet<LabelKey> = state
        .pool
        .records()
        .iter()
        .filter_map(|r| r.gt.map(|g| label_key(&r.features, g)))
        .collect();
    let mut applied = 0usize;
    for rec in records {
        let WalRecord::Label { features, gt, .. } = rec;
        if features.len() != dim || !gt.is_finite() || features.iter().any(|v| !v.is_finite()) {
            continue;
        }
        if seen.insert(label_key(features, *gt)) {
            state.pool.append_new(&[(features.clone(), Some(*gt))]);
            applied += 1;
        }
    }
    state.pool.evict_to_cap(state.cfg.pool_cap);
    applied
}

fn load_snapshot(vfs: &dyn Vfs, name: &str) -> Result<LoadedSnapshot, DurabilityError> {
    let data = vfs.read(name)?;
    decode_snapshot(&data)
}

/// Decode and validate a full snapshot image from bytes (magic + state
/// frame + model frame). Public so a replication standby can vet a shipped
/// checkpoint — including `WarperState::validate` — *before* installing it.
pub fn decode_snapshot(data: &[u8]) -> Result<LoadedSnapshot, DurabilityError> {
    if data.len() < SNAP_MAGIC.len() || &data[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(DurabilityError::Corrupt("bad snapshot magic".into()));
    }
    let rest = &data[SNAP_MAGIC.len()..];
    let FrameDecode::Frame { payload, consumed } = decode_frame(rest) else {
        return Err(DurabilityError::Corrupt(
            "snapshot state frame damaged".into(),
        ));
    };
    let state: WarperState = crate::json_from_bytes(payload)
        .map_err(|e| DurabilityError::Corrupt(format!("snapshot state undecodable: {e}")))?;
    state.validate().map_err(DurabilityError::State)?;
    let model = match decode_frame(&rest[consumed..]) {
        FrameDecode::Frame { payload, .. } => {
            let blob: Option<ModelBlob> = crate::json_from_bytes(payload)
                .map_err(|e| DurabilityError::Corrupt(format!("model blob undecodable: {e}")))?;
            match blob {
                Some(blob) => Some(blob.restore()?),
                None => None,
            }
        }
        // Tolerated: a snapshot written without a model frame still has a
        // fully usable state; resume rebuilds the model instead.
        FrameDecode::CleanEof => None,
        FrameDecode::Corrupt(msg) => {
            return Err(DurabilityError::Corrupt(format!(
                "model frame damaged: {msg}"
            )))
        }
    };
    Ok((state, model))
}
