//! Crash-safe durability for Warper's adaptation state.
//!
//! The paper's premise (§3.5, §4.5) is that adaptation state — the adapted
//! `E`/`G`/`D` networks, the tuned γ, and above all the pool of *annotated*
//! queries whose ground-truth labels cost seconds each — is expensive to
//! rebuild. This crate makes that state survive a crash at any instruction:
//!
//! * [`vfs`] — the file-I/O abstraction: [`vfs::StdVfs`] for a real state
//!   directory, [`vfs::MemVfs`] modelling fsync/dir-sync crash semantics,
//!   and [`vfs::FailpointVfs`] injecting deterministic faults at any
//!   schedulable operation;
//! * [`frame`] — CRC32-framed record encoding shared by snapshots and WAL;
//! * [`wal`] — the write-ahead log of annotation observations between
//!   checkpoints, with truncate-repair of torn tails;
//! * [`model_blob`] — type-erased persistence of the serving CE model;
//! * [`store`] — [`store::DurableStore`], tying it together: atomic
//!   checkpoints (temp file → fsync → rename → dir fsync, last-known-good
//!   retained), WAL rotation with carry-forward of labels not yet absorbed
//!   into a snapshot, and recovery = newest valid snapshot →
//!   `WarperState::validate` → WAL-tail replay truncating at the first
//!   corrupt record.
//!
//! The durability invariant, enforced by the kill-at-every-failpoint suite
//! in `tests/crash_recovery.rs`: once [`store::DurableStore::append_label`]
//! returns `Ok` (the label is *acknowledged*), the label survives any
//! subsequent crash, and recovery always yields a `WarperState` that passes
//! `validate()`.

pub mod frame;
pub mod model_blob;
pub mod store;
pub mod vfs;
pub mod wal;

pub use model_blob::ModelBlob;
pub use store::{
    decode_snapshot, snap_file_name, wal_file_name, DurabilityConfig, DurabilityStats,
    DurableEvent, DurableStore, DurableTap, LoadedSnapshot, Recovered, RecoveryReport,
};
pub use vfs::{FailKind, FailPlan, FailpointVfs, MemVfs, StdVfs, Vfs, VfsError};
pub use wal::{validate_wal_frame, WalRecord, WalWriter};

use std::fmt;

/// Why a durability operation failed.
#[derive(Debug)]
pub enum DurabilityError {
    /// The underlying VFS operation failed (I/O error, injected fault,
    /// simulated crash).
    Vfs(VfsError),
    /// On-disk bytes were unrecognizable or failed checksum/validation.
    Corrupt(String),
    /// State could not be serialized.
    Encode(String),
    /// A recovered `WarperState` failed its own validation.
    State(warper_core::WarperError),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Vfs(e) => write!(f, "vfs: {e}"),
            DurabilityError::Corrupt(msg) => write!(f, "corrupt durable state: {msg}"),
            DurabilityError::Encode(msg) => write!(f, "encode failure: {msg}"),
            DurabilityError::State(e) => write!(f, "recovered state invalid: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<VfsError> for DurabilityError {
    fn from(e: VfsError) -> Self {
        DurabilityError::Vfs(e)
    }
}

/// JSON-encode to bytes (the vendored serde_json exposes string I/O only).
pub(crate) fn json_to_bytes<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, String> {
    serde_json::to_string(value)
        .map(String::into_bytes)
        .map_err(|e| e.to_string())
}

/// JSON-decode from bytes; non-UTF-8 payloads are decode errors, not panics.
pub(crate) fn json_from_bytes<T: for<'de> serde::Deserialize<'de>>(
    bytes: &[u8],
) -> Result<T, String> {
    let s = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
    serde_json::from_str(s).map_err(|e| e.to_string())
}
