//! CRC32-framed record encoding shared by snapshots and the WAL.
//!
//! Wire format of one frame:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! Decoding distinguishes a *clean end* (the buffer stops exactly at a frame
//! boundary) from a *corrupt tail* (truncated header, truncated payload,
//! implausible length, or checksum mismatch). That distinction is what lets
//! recovery replay a WAL up to the last good record and truncate the rest.

/// Frames above this payload size are rejected as corrupt rather than
/// allocated: a torn length word must not drive a multi-gigabyte read.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE 802.3 polynomial, reflected).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

/// Encode one frame: length + checksum header followed by the payload.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of decoding the frame at the start of a buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameDecode<'a> {
    /// A complete, checksum-valid frame occupying `consumed` bytes.
    Frame { payload: &'a [u8], consumed: usize },
    /// The buffer is empty: a clean end of the frame stream.
    CleanEof,
    /// The buffer starts with garbage: torn header, short payload,
    /// implausible length, or checksum mismatch.
    Corrupt(&'static str),
}

/// Decode the frame at the start of `buf`.
pub fn decode_frame(buf: &[u8]) -> FrameDecode<'_> {
    if buf.is_empty() {
        return FrameDecode::CleanEof;
    }
    if buf.len() < 8 {
        return FrameDecode::Corrupt("truncated frame header");
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > MAX_FRAME_LEN {
        return FrameDecode::Corrupt("implausible frame length");
    }
    let len = len as usize;
    if buf.len() < 8 + len {
        return FrameDecode::Corrupt("truncated frame payload");
    }
    let payload = &buf[8..8 + len];
    if crc32(payload) != crc {
        return FrameDecode::Corrupt("frame checksum mismatch");
    }
    FrameDecode::Frame {
        payload,
        consumed: 8 + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let enc = encode_frame(b"hello warper");
        match decode_frame(&enc) {
            FrameDecode::Frame { payload, consumed } => {
                assert_eq!(payload, b"hello warper");
                assert_eq!(consumed, enc.len());
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn empty_buffer_is_clean_eof() {
        assert_eq!(decode_frame(&[]), FrameDecode::CleanEof);
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let enc = encode_frame(b"payload bytes");
        for cut in 1..enc.len() {
            match decode_frame(&enc[..cut]) {
                FrameDecode::Corrupt(_) => {}
                other => panic!("cut at {cut} not detected: {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let enc = encode_frame(b"bitflip target");
        for byte in 0..enc.len() {
            for bit in 0..8 {
                let mut bad = enc.clone();
                bad[byte] ^= 1 << bit;
                match decode_frame(&bad) {
                    FrameDecode::Corrupt(_) => {}
                    // A flip in the length word can make the frame appear
                    // truncated-in-a-longer-stream; within a lone buffer it
                    // still must not decode as a valid frame.
                    FrameDecode::Frame { .. } => panic!("flip {byte}:{bit} undetected"),
                    FrameDecode::CleanEof => panic!("flip {byte}:{bit} read as eof"),
                }
            }
        }
    }

    #[test]
    fn oversized_length_word_is_corrupt_not_alloc() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(decode_frame(&buf), FrameDecode::Corrupt(_)));
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let mut stream = encode_frame(b"first");
        stream.extend_from_slice(&encode_frame(b"second"));
        let FrameDecode::Frame { payload, consumed } = decode_frame(&stream) else {
            panic!("first frame failed");
        };
        assert_eq!(payload, b"first");
        let FrameDecode::Frame { payload, .. } = decode_frame(&stream[consumed..]) else {
            panic!("second frame failed");
        };
        assert_eq!(payload, b"second");
    }
}
