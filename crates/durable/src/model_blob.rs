//! Type-erased persistence for the serving CE model.
//!
//! The serve layer holds its model as `dyn CardinalityEstimator`; the
//! checkpoint needs a concrete serde form. [`ModelBlob`] is the closed union
//! of every persistable model in the workspace: capture downcasts the trait
//! object (the trait's `Any` supertrait exists for exactly this), restore
//! validates through each model's [`Persistable::from_state`] so a corrupt
//! blob surfaces as an error instead of a NaN-serving estimator.

use serde::{Deserialize, Serialize};
use warper_ce::lm::{LmGbt, LmKrr, LmLinear, LmMlp};
use warper_ce::mscn::Mscn;
use warper_ce::persist::{LmGbtState, LmKrrState, LmLinearState, LmMlpState, MscnState};
use warper_ce::{CardinalityEstimator, Persistable};

use crate::DurabilityError;

/// Serializable image of one concrete CE model.
#[derive(Serialize, Deserialize)]
pub enum ModelBlob {
    LmMlp(LmMlpState),
    LmGbt(LmGbtState),
    LmKrr(LmKrrState),
    LmLinear(LmLinearState),
    Mscn(MscnState),
}

impl ModelBlob {
    /// Capture the serving model's state, or `None` for model types without
    /// a persistable form (e.g. the histogram baseline) — the checkpoint
    /// then stores controller state only and resume rebuilds the model.
    pub fn capture(model: &dyn CardinalityEstimator) -> Option<ModelBlob> {
        let any = model as &dyn std::any::Any;
        if let Some(m) = any.downcast_ref::<LmMlp>() {
            return Some(ModelBlob::LmMlp(m.to_state()));
        }
        if let Some(m) = any.downcast_ref::<LmGbt>() {
            return Some(ModelBlob::LmGbt(m.to_state()));
        }
        if let Some(m) = any.downcast_ref::<LmKrr>() {
            return Some(ModelBlob::LmKrr(m.to_state()));
        }
        if let Some(m) = any.downcast_ref::<LmLinear>() {
            return Some(ModelBlob::LmLinear(m.to_state()));
        }
        if let Some(m) = any.downcast_ref::<Mscn>() {
            return Some(ModelBlob::Mscn(m.to_state()));
        }
        None
    }

    /// Validate and reconstruct the model.
    pub fn restore(self) -> Result<Box<dyn CardinalityEstimator>, DurabilityError> {
        fn bad(e: warper_ce::PersistError) -> DurabilityError {
            DurabilityError::Corrupt(format!("model blob rejected: {e}"))
        }
        Ok(match self {
            ModelBlob::LmMlp(s) => Box::new(LmMlp::from_state(s).map_err(bad)?),
            ModelBlob::LmGbt(s) => Box::new(LmGbt::from_state(s).map_err(bad)?),
            ModelBlob::LmKrr(s) => Box::new(LmKrr::from_state(s).map_err(bad)?),
            ModelBlob::LmLinear(s) => Box::new(LmLinear::from_state(s).map_err(bad)?),
            ModelBlob::Mscn(s) => Box::new(Mscn::from_state(s).map_err(bad)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warper_ce::LabeledExample;

    #[test]
    fn capture_restore_roundtrips_lm_mlp() {
        let dim = 4;
        let examples: Vec<LabeledExample> = (0..100)
            .map(|i| {
                LabeledExample::new(
                    (0..dim).map(|c| ((i + c) % 7) as f64 / 7.0).collect(),
                    50.0 + (i % 20) as f64 * 10.0,
                )
            })
            .collect();
        let mut model = LmMlp::new(dim, Default::default(), 11);
        model.fit(&examples);
        let erased: &dyn CardinalityEstimator = &model;
        let blob = ModelBlob::capture(erased).expect("LmMlp is persistable");
        let json = serde_json::to_string(&blob).unwrap();
        let back: ModelBlob = serde_json::from_str(&json).unwrap();
        let restored = back.restore().unwrap();
        assert_eq!(restored.name(), model.name());
        let q = vec![0.3; dim];
        assert!((restored.estimate(&q) - model.estimate(&q)).abs() < 1e-9);
    }

    #[test]
    fn unknown_model_type_has_no_blob() {
        struct Opaque;
        impl CardinalityEstimator for Opaque {
            fn feature_dim(&self) -> usize {
                1
            }
            fn estimate(&self, _features: &[f64]) -> f64 {
                1.0
            }
            fn fit(&mut self, _examples: &[LabeledExample]) {}
            fn update(&mut self, _examples: &[LabeledExample]) {}
            fn update_kind(&self) -> warper_ce::UpdateKind {
                warper_ce::UpdateKind::Retrain
            }
            fn name(&self) -> &'static str {
                "opaque"
            }
        }
        assert!(ModelBlob::capture(&Opaque).is_none());
    }
}
