//! Virtual file system abstraction for the durability layer.
//!
//! Every byte the durability layer persists flows through the [`Vfs`] trait:
//! a flat namespace of files inside one state directory, with explicit
//! `fsync` (file-content barrier) and `sync_dir` (directory-entry barrier)
//! operations. Keeping the surface this small buys two things:
//!
//! 1. [`StdVfs`] maps it onto a real directory with the exact syscall
//!    sequence the checkpoint protocol needs (`write` → `fsync` → `rename`
//!    → directory `fsync`);
//! 2. [`MemVfs`] models the crash semantics of that sequence — data that was
//!    never fsynced vanishes on a power cut, renamed entries revert unless
//!    the directory was synced — and [`FailpointVfs`] layers deterministic
//!    fault injection (short writes, torn writes, failed fsyncs, power cuts)
//!    on top, indexed by a global operation counter so a test can kill the
//!    process at *every* reachable I/O operation.
//!
//! The namespace is flat on purpose: snapshots and WALs live side by side in
//! one state directory, so one `sync_dir` barrier covers every entry
//! mutation and no nested-directory ordering games are possible.

use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Why a VFS operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// Underlying I/O error from the real filesystem.
    Io(String),
    /// The named file does not exist.
    NotFound(String),
    /// A fault injected by [`FailpointVfs`]; the process is still alive.
    Injected(&'static str),
    /// The simulated process has lost power; every subsequent operation on
    /// this handle fails with the same error.
    Crashed,
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::Io(msg) => write!(f, "i/o error: {msg}"),
            VfsError::NotFound(name) => write!(f, "file not found: {name}"),
            VfsError::Injected(what) => write!(f, "injected fault: {what}"),
            VfsError::Crashed => write!(f, "simulated power loss"),
        }
    }
}

impl std::error::Error for VfsError {}

/// Abstract file I/O over a flat state directory.
///
/// Durability contract implementations must honour:
/// * `append`/`create`/`truncate` affect file *contents*, which become
///   durable only after `fsync` on that file;
/// * `create`/`rename`/`remove` affect directory *entries*, which become
///   durable only after `sync_dir`;
/// * `rename` atomically replaces the destination entry.
pub trait Vfs: Send + Sync {
    /// Names of all files currently visible in the directory.
    fn list(&self) -> Result<Vec<String>, VfsError>;
    /// Full contents of `name`.
    fn read(&self, name: &str) -> Result<Vec<u8>, VfsError>;
    /// Create `name` empty, truncating any existing file.
    fn create(&self, name: &str) -> Result<(), VfsError>;
    /// Append `data` to `name`.
    fn append(&self, name: &str, data: &[u8]) -> Result<(), VfsError>;
    /// Cut `name` down to `len` bytes (no-op if already shorter).
    fn truncate(&self, name: &str, len: u64) -> Result<(), VfsError>;
    /// Make the current contents of `name` durable.
    fn fsync(&self, name: &str) -> Result<(), VfsError>;
    /// Atomically rename `from` to `to`, replacing `to` if present.
    fn rename(&self, from: &str, to: &str) -> Result<(), VfsError>;
    /// Remove the directory entry for `name`.
    fn remove(&self, name: &str) -> Result<(), VfsError>;
    /// Make the current set of directory entries durable.
    fn sync_dir(&self) -> Result<(), VfsError>;
    /// Current size of `name` in bytes.
    fn size(&self, name: &str) -> Result<u64, VfsError>;
}

fn check_name(name: &str) -> Result<(), VfsError> {
    if name.is_empty() || name.contains('/') || name.contains('\\') || name.contains("..") {
        return Err(VfsError::Io(format!(
            "invalid flat-namespace file name: {name:?}"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------------

/// [`Vfs`] over a real directory on disk.
pub struct StdVfs {
    root: PathBuf,
}

impl StdVfs {
    /// Open (creating if necessary) `root` as a state directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, VfsError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(io_err)?;
        Ok(StdVfs { root })
    }

    fn path(&self, name: &str) -> Result<PathBuf, VfsError> {
        check_name(name)?;
        Ok(self.root.join(name))
    }
}

fn io_err(e: std::io::Error) -> VfsError {
    VfsError::Io(e.to_string())
}

impl Vfs for StdVfs {
    fn list(&self) -> Result<Vec<String>, VfsError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            if entry.file_type().map_err(io_err)?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, VfsError> {
        let path = self.path(name)?;
        match std::fs::read(&path) {
            Ok(data) => Ok(data),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(VfsError::NotFound(name.to_string()))
            }
            Err(e) => Err(io_err(e)),
        }
    }

    fn create(&self, name: &str) -> Result<(), VfsError> {
        std::fs::File::create(self.path(name)?).map_err(io_err)?;
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<(), VfsError> {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(self.path(name)?)
            .map_err(io_err)?;
        file.write_all(data).map_err(io_err)
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), VfsError> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name)?)
            .map_err(io_err)?;
        if file.metadata().map_err(io_err)?.len() > len {
            file.set_len(len).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
        }
        Ok(())
    }

    fn fsync(&self, name: &str) -> Result<(), VfsError> {
        std::fs::File::open(self.path(name)?)
            .map_err(io_err)?
            .sync_all()
            .map_err(io_err)
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), VfsError> {
        std::fs::rename(self.path(from)?, self.path(to)?).map_err(io_err)
    }

    fn remove(&self, name: &str) -> Result<(), VfsError> {
        std::fs::remove_file(self.path(name)?).map_err(io_err)
    }

    fn sync_dir(&self) -> Result<(), VfsError> {
        // On unix, fsync on the directory fd persists its entries. Some
        // platforms refuse to open a directory for syncing; a missing
        // directory barrier degrades durability, not correctness, so only
        // genuine open failures are surfaced.
        match std::fs::File::open(&self.root) {
            Ok(dir) => dir.sync_all().map_err(io_err),
            Err(e) => Err(io_err(e)),
        }
    }

    fn size(&self, name: &str) -> Result<u64, VfsError> {
        match std::fs::metadata(self.path(name)?) {
            Ok(meta) => Ok(meta.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(VfsError::NotFound(name.to_string()))
            }
            Err(e) => Err(io_err(e)),
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory crash-modeling filesystem
// ---------------------------------------------------------------------------

#[derive(Clone, Default)]
struct FileData {
    data: Vec<u8>,
    /// Prefix of `data` known durable (covered by the last fsync).
    synced: usize,
}

#[derive(Default)]
struct MemInner {
    /// Inode table; directory maps index into it.
    inodes: Vec<FileData>,
    /// Volatile view of the directory (what `list`/`read` see).
    current: HashMap<String, usize>,
    /// Durable view of the directory (what survives a power cut).
    durable: HashMap<String, usize>,
}

/// In-memory [`Vfs`] with an explicit durable-vs-volatile state split, in
/// the style of crash-consistency checkers (ALICE, CrashMonkey).
///
/// * File contents past the last `fsync` are volatile.
/// * Directory entry changes (`create`, `rename`, `remove`) are volatile
///   until `sync_dir`.
/// * [`MemVfs::power_cut`] drops all volatile state: files shrink to their
///   synced prefix and the directory reverts to its durable view. Clones
///   share state, so a "recovered process" is just a fresh clone of the same
///   `MemVfs` used after `power_cut`.
#[derive(Clone, Default)]
pub struct MemVfs {
    inner: Arc<Mutex<MemInner>>,
}

impl MemVfs {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Simulate losing power: volatile file tails and directory-entry
    /// changes are discarded.
    pub fn power_cut(&self) {
        let mut inner = self.lock();
        for file in &mut inner.inodes {
            let synced = file.synced;
            file.data.truncate(synced);
        }
        inner.current = inner.durable.clone();
    }

    /// Force the full current contents of `name` durable without an fsync
    /// call. Used by [`FailpointVfs`] to model a torn write whose partial
    /// bytes did reach the platter before power was lost.
    fn force_durable(&self, name: &str) {
        let mut inner = self.lock();
        if let Some(&ino) = inner.current.get(name) {
            if let Some(file) = inner.inodes.get_mut(ino) {
                file.synced = file.data.len();
            }
        }
    }

    fn inode_of(&self, name: &str) -> Result<usize, VfsError> {
        self.lock()
            .current
            .get(name)
            .copied()
            .ok_or_else(|| VfsError::NotFound(name.to_string()))
    }
}

impl Vfs for MemVfs {
    fn list(&self) -> Result<Vec<String>, VfsError> {
        let mut names: Vec<String> = self.lock().current.keys().cloned().collect();
        names.sort();
        Ok(names)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, VfsError> {
        let ino = self.inode_of(name)?;
        let inner = self.lock();
        inner
            .inodes
            .get(ino)
            .map(|f| f.data.clone())
            .ok_or_else(|| VfsError::NotFound(name.to_string()))
    }

    fn create(&self, name: &str) -> Result<(), VfsError> {
        check_name(name)?;
        let mut inner = self.lock();
        // A fresh inode: if the durable directory still points at the old
        // one, a power cut correctly resurrects the old contents.
        inner.inodes.push(FileData::default());
        let ino = inner.inodes.len() - 1;
        inner.current.insert(name.to_string(), ino);
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<(), VfsError> {
        let ino = self.inode_of(name)?;
        let mut inner = self.lock();
        match inner.inodes.get_mut(ino) {
            Some(file) => {
                file.data.extend_from_slice(data);
                Ok(())
            }
            None => Err(VfsError::NotFound(name.to_string())),
        }
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), VfsError> {
        let ino = self.inode_of(name)?;
        let mut inner = self.lock();
        match inner.inodes.get_mut(ino) {
            Some(file) => {
                let len = len as usize;
                if file.data.len() > len {
                    file.data.truncate(len);
                    file.synced = file.synced.min(len);
                }
                Ok(())
            }
            None => Err(VfsError::NotFound(name.to_string())),
        }
    }

    fn fsync(&self, name: &str) -> Result<(), VfsError> {
        let ino = self.inode_of(name)?;
        let mut inner = self.lock();
        match inner.inodes.get_mut(ino) {
            Some(file) => {
                file.synced = file.data.len();
                Ok(())
            }
            None => Err(VfsError::NotFound(name.to_string())),
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), VfsError> {
        check_name(to)?;
        let mut inner = self.lock();
        match inner.current.remove(from) {
            Some(ino) => {
                inner.current.insert(to.to_string(), ino);
                Ok(())
            }
            None => Err(VfsError::NotFound(from.to_string())),
        }
    }

    fn remove(&self, name: &str) -> Result<(), VfsError> {
        let mut inner = self.lock();
        match inner.current.remove(name) {
            Some(_) => Ok(()),
            None => Err(VfsError::NotFound(name.to_string())),
        }
    }

    fn sync_dir(&self) -> Result<(), VfsError> {
        let mut inner = self.lock();
        inner.durable = inner.current.clone();
        Ok(())
    }

    fn size(&self, name: &str) -> Result<u64, VfsError> {
        let ino = self.inode_of(name)?;
        let inner = self.lock();
        inner
            .inodes
            .get(ino)
            .map(|f| f.data.len() as u64)
            .ok_or_else(|| VfsError::NotFound(name.to_string()))
    }
}

// ---------------------------------------------------------------------------
// Deterministic failpoint injection
// ---------------------------------------------------------------------------

/// What happens when the failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// Power is lost at this operation: volatile state vanishes and every
    /// later operation on this handle fails with [`VfsError::Crashed`].
    PowerCut,
    /// An `append` persists only the first half of its bytes (they *do*
    /// reach the platter) and then power is lost — the adversarial
    /// garbage-tail case. On non-append operations this degrades to
    /// [`FailKind::PowerCut`].
    TornWrite,
    /// An `append` writes only half its bytes and reports an error; the
    /// process survives and must repair. On non-append operations this
    /// degrades to [`FailKind::OpError`].
    ShortWrite,
    /// The operation fails transiently (e.g. a failed fsync); the process
    /// survives.
    OpError,
}

/// A single scheduled fault: fire `kind` at the `at_op`-th VFS operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailPlan {
    pub at_op: u64,
    pub kind: FailKind,
}

struct FpState {
    op: u64,
    plan: Option<FailPlan>,
    crashed: bool,
}

/// Wraps a [`MemVfs`] and injects one scheduled fault, addressed by a
/// global operation counter.
///
/// Run once with no plan to learn how many operations a workload performs
/// ([`FailpointVfs::ops`]), then re-run with `FailPlan { at_op: k, .. }` for
/// every `k` to kill the workload at each reachable I/O point. After a
/// crash, recover through a plain clone of the underlying [`MemVfs`] — the
/// durable state is shared.
pub struct FailpointVfs {
    inner: MemVfs,
    state: Mutex<FpState>,
}

impl FailpointVfs {
    /// Counting mode: no fault, every operation succeeds.
    pub fn new(inner: MemVfs) -> Self {
        FailpointVfs {
            inner,
            state: Mutex::new(FpState {
                op: 0,
                plan: None,
                crashed: false,
            }),
        }
    }

    pub fn with_plan(inner: MemVfs, plan: FailPlan) -> Self {
        FailpointVfs {
            inner,
            state: Mutex::new(FpState {
                op: 0,
                plan: Some(plan),
                crashed: false,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FpState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Total operations attempted so far (including the faulted one).
    pub fn ops(&self) -> u64 {
        self.lock().op
    }

    /// Whether the simulated power cut has happened.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// The shared underlying store, for post-crash recovery.
    pub fn mem(&self) -> MemVfs {
        self.inner.clone()
    }

    /// Advance the op counter; `Ok(Some(kind))` means the fault fires now.
    fn gate(&self) -> Result<Option<FailKind>, VfsError> {
        let mut s = self.lock();
        if s.crashed {
            return Err(VfsError::Crashed);
        }
        let op = s.op;
        s.op += 1;
        if let Some(plan) = s.plan {
            if plan.at_op == op {
                return Ok(Some(plan.kind));
            }
        }
        Ok(None)
    }

    fn crash(&self) -> VfsError {
        self.lock().crashed = true;
        self.inner.power_cut();
        VfsError::Crashed
    }

    /// Handle a fired fault on a non-append operation.
    fn fire_simple(&self, kind: FailKind) -> VfsError {
        match kind {
            FailKind::PowerCut | FailKind::TornWrite => self.crash(),
            FailKind::ShortWrite | FailKind::OpError => VfsError::Injected("operation failed"),
        }
    }
}

impl Vfs for FailpointVfs {
    fn list(&self) -> Result<Vec<String>, VfsError> {
        match self.gate()? {
            None => self.inner.list(),
            Some(kind) => Err(self.fire_simple(kind)),
        }
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, VfsError> {
        match self.gate()? {
            None => self.inner.read(name),
            Some(kind) => Err(self.fire_simple(kind)),
        }
    }

    fn create(&self, name: &str) -> Result<(), VfsError> {
        match self.gate()? {
            None => self.inner.create(name),
            Some(kind) => Err(self.fire_simple(kind)),
        }
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<(), VfsError> {
        match self.gate()? {
            None => self.inner.append(name, data),
            Some(FailKind::PowerCut) => Err(self.crash()),
            Some(FailKind::TornWrite) => {
                // Half the bytes land and are already on the platter when
                // power drops: recovery sees a garbage tail.
                let _ = self.inner.append(name, &data[..data.len() / 2]);
                self.inner.force_durable(name);
                Err(self.crash())
            }
            Some(FailKind::ShortWrite) => {
                // Half the bytes land (volatile) and the write errors; the
                // process lives and must truncate-repair.
                let _ = self.inner.append(name, &data[..data.len() / 2]);
                Err(VfsError::Injected("short write"))
            }
            Some(FailKind::OpError) => Err(VfsError::Injected("append failed")),
        }
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), VfsError> {
        match self.gate()? {
            None => self.inner.truncate(name, len),
            Some(kind) => Err(self.fire_simple(kind)),
        }
    }

    fn fsync(&self, name: &str) -> Result<(), VfsError> {
        match self.gate()? {
            None => self.inner.fsync(name),
            Some(kind) => Err(self.fire_simple(kind)),
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), VfsError> {
        match self.gate()? {
            None => self.inner.rename(from, to),
            Some(kind) => Err(self.fire_simple(kind)),
        }
    }

    fn remove(&self, name: &str) -> Result<(), VfsError> {
        match self.gate()? {
            None => self.inner.remove(name),
            Some(kind) => Err(self.fire_simple(kind)),
        }
    }

    fn sync_dir(&self) -> Result<(), VfsError> {
        match self.gate()? {
            None => self.inner.sync_dir(),
            Some(kind) => Err(self.fire_simple(kind)),
        }
    }

    fn size(&self, name: &str) -> Result<u64, VfsError> {
        match self.gate()? {
            None => self.inner.size(name),
            Some(kind) => Err(self.fire_simple(kind)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_power_cut_drops_unsynced_tail() {
        let vfs = MemVfs::new();
        vfs.create("f").unwrap();
        vfs.append("f", b"durable").unwrap();
        vfs.fsync("f").unwrap();
        vfs.sync_dir().unwrap();
        vfs.append("f", b"+volatile").unwrap();
        vfs.power_cut();
        assert_eq!(vfs.read("f").unwrap(), b"durable");
    }

    #[test]
    fn mem_vfs_power_cut_reverts_unsynced_rename() {
        let vfs = MemVfs::new();
        vfs.create("old").unwrap();
        vfs.append("old", b"v1").unwrap();
        vfs.fsync("old").unwrap();
        vfs.sync_dir().unwrap();

        vfs.create("tmp").unwrap();
        vfs.append("tmp", b"v2").unwrap();
        vfs.fsync("tmp").unwrap();
        vfs.rename("tmp", "old").unwrap();
        // No sync_dir: the rename is volatile.
        vfs.power_cut();
        assert_eq!(vfs.read("old").unwrap(), b"v1");

        // And with the barrier, the rename sticks.
        vfs.create("tmp").unwrap();
        vfs.append("tmp", b"v3").unwrap();
        vfs.fsync("tmp").unwrap();
        vfs.rename("tmp", "old").unwrap();
        vfs.sync_dir().unwrap();
        vfs.power_cut();
        assert_eq!(vfs.read("old").unwrap(), b"v3");
    }

    #[test]
    fn failpoint_torn_write_leaves_partial_durable_bytes() {
        let mem = MemVfs::new();
        {
            let fp = FailpointVfs::new(mem.clone());
            fp.create("w").unwrap();
            fp.fsync("w").unwrap();
            fp.sync_dir().unwrap();
        }
        // Ops 0..3 consumed above in a separate handle; new handle restarts
        // the counter, so op 0 is the append below.
        let fp = FailpointVfs::with_plan(
            mem.clone(),
            FailPlan {
                at_op: 0,
                kind: FailKind::TornWrite,
            },
        );
        let err = fp.append("w", b"0123456789").unwrap_err();
        assert_eq!(err, VfsError::Crashed);
        assert!(fp.crashed());
        assert_eq!(fp.append("w", b"more").unwrap_err(), VfsError::Crashed);
        // Recovery through the shared MemVfs sees the torn half.
        assert_eq!(mem.read("w").unwrap(), b"01234");
    }

    #[test]
    fn failpoint_counting_mode_counts_every_op() {
        let fp = FailpointVfs::new(MemVfs::new());
        fp.create("a").unwrap();
        fp.append("a", b"x").unwrap();
        fp.fsync("a").unwrap();
        fp.sync_dir().unwrap();
        let _ = fp.list().unwrap();
        assert_eq!(fp.ops(), 5);
    }

    #[test]
    fn std_vfs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("warper-vfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let vfs = StdVfs::open(&dir).unwrap();
        vfs.create("snap").unwrap();
        vfs.append("snap", b"hello").unwrap();
        vfs.fsync("snap").unwrap();
        vfs.sync_dir().unwrap();
        assert_eq!(vfs.read("snap").unwrap(), b"hello");
        assert_eq!(vfs.size("snap").unwrap(), 5);
        vfs.truncate("snap", 2).unwrap();
        assert_eq!(vfs.read("snap").unwrap(), b"he");
        vfs.rename("snap", "snap2").unwrap();
        assert!(matches!(vfs.read("snap"), Err(VfsError::NotFound(_))));
        assert_eq!(vfs.list().unwrap(), vec!["snap2".to_string()]);
        vfs.remove("snap2").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flat_namespace_rejects_path_traversal() {
        let vfs = MemVfs::new();
        assert!(vfs.create("../escape").is_err());
        assert!(vfs.create("a/b").is_err());
        assert!(vfs.create("").is_err());
    }
}
