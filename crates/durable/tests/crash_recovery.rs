//! Crash-recovery suite for the durability layer.
//!
//! The durability invariant under test: once `DurableStore::append_label`
//! returns `Ok` (the label is *acknowledged*), that label survives any
//! subsequent crash, and recovery always yields a `WarperState` that passes
//! `validate()` and rebuilds a controller.
//!
//! The deterministic tests below always run. The headline
//! kill-at-every-failpoint sweep — re-running an adaptation-shaped workload
//! with a crash injected at every reachable VFS operation, for every fault
//! kind — plus the randomized proptest schedules are behind
//! `--features faults` (they are heavy).

use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

use warper_core::detect::DataTelemetry;
use warper_core::{ArrivedQuery, WarperConfig, WarperController, WarperState};
use warper_durable::{
    DurabilityConfig, DurableStore, FailKind, FailPlan, FailpointVfs, MemVfs, Vfs,
};

mod toy {
    use warper_ce::{CardinalityEstimator, LabeledExample, UpdateKind};

    pub struct ToyModel;
    impl CardinalityEstimator for ToyModel {
        fn feature_dim(&self) -> usize {
            4
        }
        fn estimate(&self, f: &[f64]) -> f64 {
            1000.0 * (0.1 + f[0])
        }
        fn fit(&mut self, _e: &[LabeledExample]) {}
        fn update(&mut self, _e: &[LabeledExample]) {}
        fn update_kind(&self) -> UpdateKind {
            UpdateKind::FineTune
        }
        fn name(&self) -> &'static str {
            "toy"
        }
    }
}
use toy::ToyModel;

/// One healthy controller state, built once: controller construction
/// pre-trains the GAN, far too slow to repeat per crash schedule.
fn base_state() -> &'static WarperState {
    static STATE: OnceLock<WarperState> = OnceLock::new();
    STATE.get_or_init(|| {
        let cfg = WarperConfig {
            embed_dim: 6,
            hidden: 16,
            n_i: 8,
            pretrain_epochs: 2,
            gamma: 100,
            ..Default::default()
        };
        let train: Vec<(Vec<f64>, f64)> = (0..40)
            .map(|i| (vec![0.2 + 0.001 * (i % 7) as f64; 4], 300.0))
            .collect();
        let mut ctl = WarperController::new(4, &train, 1.5, cfg, 42);
        let arrived: Vec<ArrivedQuery> = (0..30)
            .map(|i| ArrivedQuery {
                features: vec![0.8 + 0.001 * (i % 5) as f64; 4],
                gt: Some(90_000.0),
            })
            .collect();
        ctl.invoke(
            &mut ToyModel,
            &arrived,
            &DataTelemetry::default(),
            &mut |qs| vec![Some(90_000.0); qs.len()],
        );
        ctl.to_state()
    })
}

type Label = (Vec<f64>, f64);

fn label_for(step: usize) -> Label {
    (
        vec![
            0.30 + 0.002 * (step % 50) as f64,
            0.40,
            0.50,
            0.60 + 0.001 * (step / 50) as f64,
        ],
        1_000.0 + step as f64,
    )
}

fn label_key(features: &[f64], gt: f64) -> (Vec<u64>, u64) {
    (features.iter().map(|v| v.to_bits()).collect(), gt.to_bits())
}

const STEPS: usize = 24;
const CHECKPOINT_EVERY_STEPS: usize = 7;

/// Drive an adaptation-shaped workload against a store: open (possibly
/// resuming), write an initial checkpoint if the directory is fresh, then
/// interleave label appends with periodic checkpoints whose state mirrors
/// the appended labels (exactly what the serve wiring does through the
/// supervisor commit hook). Returns the labels acknowledged before any
/// crash cut the run short.
fn drive(vfs: Arc<dyn Vfs>) -> Vec<Label> {
    let mut acked = Vec::new();
    let Ok((mut store, recovered)) = DurableStore::open(vfs, DurabilityConfig::default()) else {
        return acked;
    };
    let mut state = match recovered {
        Some(r) => r.state,
        None => base_state().clone(),
    };
    if store.seq() == 0 && store.checkpoint(&state, None).is_err() {
        // No durable base: nothing can be acknowledged.
        return acked;
    }
    for step in 0..STEPS {
        let (features, gt) = label_for(step);
        if store.append_label(&features, gt, false).is_ok() {
            acked.push((features.clone(), gt));
        }
        // The serving side applies the label to its in-memory pool
        // regardless of ack status; checkpointed state reflects that.
        state.pool.append_new(&[(features, Some(gt))]);
        if (step + 1) % CHECKPOINT_EVERY_STEPS == 0 {
            let _ = store.checkpoint(&state, None);
        }
    }
    acked
}

/// Recover from whatever survived in `mem` and assert the invariant:
/// recovery succeeds, the state validates and rebuilds a controller, and
/// every acknowledged label is present in the recovered pool.
fn recover_and_check(mem: &MemVfs, acked: &[Label], context: &str) {
    let (_, recovered) = DurableStore::open(Arc::new(mem.clone()), DurabilityConfig::default())
        .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
    let Some(rec) = recovered else {
        assert!(
            acked.is_empty(),
            "{context}: {} acked labels but no recoverable image",
            acked.len()
        );
        return;
    };
    rec.state
        .validate()
        .unwrap_or_else(|e| panic!("{context}: recovered state invalid: {e}"));
    let have: HashSet<(Vec<u64>, u64)> = rec
        .state
        .pool
        .records()
        .iter()
        .filter_map(|r| r.gt.map(|g| label_key(&r.features, g)))
        .collect();
    for (features, gt) in acked {
        assert!(
            have.contains(&label_key(features, *gt)),
            "{context}: acked label gt={gt} lost (recovered from snap {}, {} wal records)",
            rec.report.snapshot_seq,
            rec.report.wal_records_replayed
        );
    }
    assert!(
        WarperController::from_state(rec.state).is_ok(),
        "{context}: recovered state does not rebuild a controller"
    );
}

// ---------------------------------------------------------------------------
// Deterministic tests (always run)
// ---------------------------------------------------------------------------

#[test]
fn clean_run_roundtrips_every_acked_label() {
    let mem = MemVfs::new();
    let acked = drive(Arc::new(mem.clone()));
    assert_eq!(acked.len(), STEPS, "clean run must ack every label");
    mem.power_cut();
    recover_and_check(&mem, &acked, "clean run + power cut");
}

#[test]
fn resume_continues_from_recovered_state() {
    let mem = MemVfs::new();
    let first = drive(Arc::new(mem.clone()));
    mem.power_cut();
    // Second run resumes from the durable image and keeps appending.
    let second = drive(Arc::new(mem.clone()));
    assert_eq!(second.len(), STEPS);
    mem.power_cut();
    let mut all = first;
    all.extend(second);
    all.sort_by(|a, b| a.1.total_cmp(&b.1));
    all.dedup_by(|a, b| a == b);
    recover_and_check(&mem, &all, "two-run resume");
}

#[test]
fn corrupt_wal_tail_is_truncated_and_earlier_records_survive() {
    let mem = MemVfs::new();
    let acked = drive(Arc::new(mem.clone()));
    // Scribble garbage onto the live WAL, then lose power.
    let wals: Vec<String> = mem
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("wal-"))
        .collect();
    let live = wals.last().expect("live wal exists").clone();
    mem.append(&live, &[0xFF, 0x00, 0xAB, 0xCD, 0x12]).unwrap();
    mem.fsync(&live).unwrap();
    mem.power_cut();

    // First open reports (and repairs) the corrupt tail...
    let (_, recovered) =
        DurableStore::open(Arc::new(mem.clone()), DurabilityConfig::default()).unwrap();
    let rec = recovered.unwrap();
    assert!(rec.report.wal_truncated, "tail corruption must be reported");
    // ...and the full invariant holds on the repaired directory.
    recover_and_check(&mem, &acked, "garbage wal tail");
}

#[test]
fn corrupt_newest_snapshot_falls_back_to_last_known_good() {
    let mem = MemVfs::new();
    let acked = drive(Arc::new(mem.clone()));
    let snaps: Vec<String> = mem
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("snap-"))
        .collect();
    assert!(
        snaps.len() >= 2,
        "retention keeps last-known-good: {snaps:?}"
    );
    // Flip one payload byte of the newest snapshot: its CRC check must
    // reject it and recovery must restore from the predecessor, replaying
    // both WALs so no acked label is lost.
    let newest = snaps.last().unwrap().clone();
    let mut bytes = mem.read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    mem.create(&newest).unwrap();
    mem.append(&newest, &bytes).unwrap();
    mem.fsync(&newest).unwrap();
    mem.sync_dir().unwrap();
    mem.power_cut();

    let (_, recovered) =
        DurableStore::open(Arc::new(mem.clone()), DurabilityConfig::default()).unwrap();
    let rec = recovered.expect("fallback image exists");
    assert_eq!(rec.report.corrupt_snapshots, 1);
    recover_and_check(&mem, &acked, "newest snapshot corrupt");
}

#[test]
fn model_blob_rides_the_checkpoint() {
    use warper_ce::lm::LmMlp;
    use warper_ce::{CardinalityEstimator, LabeledExample};

    let mut model = LmMlp::new(4, Default::default(), 17);
    let examples: Vec<LabeledExample> = (0..80)
        .map(|i| {
            LabeledExample::new(
                (0..4).map(|c| ((i + c) % 9) as f64 / 9.0).collect(),
                100.0 + (i % 10) as f64 * 25.0,
            )
        })
        .collect();
    model.fit(&examples);

    let mem = MemVfs::new();
    {
        let (mut store, _) =
            DurableStore::open(Arc::new(mem.clone()), DurabilityConfig::default()).unwrap();
        store.checkpoint(base_state(), Some(&model)).unwrap();
    }
    mem.power_cut();
    let (_, recovered) =
        DurableStore::open(Arc::new(mem.clone()), DurabilityConfig::default()).unwrap();
    let restored = recovered
        .unwrap()
        .model
        .expect("model blob survives the checkpoint");
    assert_eq!(restored.name(), model.name());
    let q = vec![0.25; 4];
    assert!((restored.estimate(&q) - model.estimate(&q)).abs() < 1e-9);
}

/// Satellite: a WAL tail that replays past `cfg.pool_cap` must evict by the
/// pool's policy — never panic, never silently grow — and the capped state
/// must still rebuild a controller through `from_state`.
#[test]
fn wal_replay_past_pool_cap_evicts_by_policy() {
    let mem = MemVfs::new();
    let mut state = base_state().clone();
    let cap = state.pool.len() + 10;
    state.cfg.pool_cap = cap;

    let appended = 30usize;
    {
        let (mut store, _) =
            DurableStore::open(Arc::new(mem.clone()), DurabilityConfig::default()).unwrap();
        store.checkpoint(&state, None).unwrap();
        for step in 0..appended {
            let (features, gt) = label_for(step);
            store.append_label(&features, gt, false).unwrap();
        }
    }
    mem.power_cut();

    let (_, recovered) =
        DurableStore::open(Arc::new(mem.clone()), DurabilityConfig::default()).unwrap();
    let rec = recovered.unwrap();
    assert_eq!(
        rec.state.pool.len(),
        cap,
        "overflowing replay must evict down to pool_cap, not grow"
    );
    assert_eq!(rec.report.wal_records_replayed, appended);
    rec.state.validate().unwrap();
    let ctl = WarperController::from_state(rec.state).expect("capped state rebuilds");
    assert_eq!(ctl.pool().len(), cap);
    // The eviction policy protects fresh ground-truth labels: the replayed
    // WAL labels (all fresh, labeled, `New`) must be the survivors over the
    // snapshot's unlabeled/generated records.
    let replayed_present = (0..appended)
        .filter(|&step| {
            let (features, gt) = label_for(step);
            ctl.pool()
                .records()
                .iter()
                .any(|r| r.features == features && r.gt == Some(gt))
        })
        .count();
    assert_eq!(
        replayed_present, appended,
        "fresh labels evicted before cheap records"
    );
}

#[test]
fn fresh_directory_recovers_nothing_and_opens_clean() {
    let mem = MemVfs::new();
    let (store, recovered) =
        DurableStore::open(Arc::new(mem.clone()), DurabilityConfig::default()).unwrap();
    assert!(recovered.is_none());
    assert_eq!(store.seq(), 0);
}

#[test]
fn all_snapshots_corrupt_is_an_error_not_a_silent_fresh_start() {
    let mem = MemVfs::new();
    drive(Arc::new(mem.clone()));
    for name in mem.list().unwrap() {
        if name.starts_with("snap-") {
            let mut bytes = mem.read(&name).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            mem.create(&name).unwrap();
            mem.append(&name, &bytes).unwrap();
        }
    }
    assert!(
        DurableStore::open(Arc::new(mem.clone()), DurabilityConfig::default()).is_err(),
        "clobbering a directory of corrupt snapshots must be refused"
    );
}

/// A cheap ungated slice of the failpoint sweep: the first operations cover
/// open, the initial checkpoint (temp write, fsync, rename, WAL creation,
/// dir sync) and the first appends — the protocol's most delicate window.
#[test]
fn kill_within_first_forty_ops_never_loses_acked_labels() {
    for kind in [FailKind::PowerCut, FailKind::TornWrite] {
        for at_op in 0..40 {
            let mem = MemVfs::new();
            let fp = Arc::new(FailpointVfs::with_plan(
                mem.clone(),
                FailPlan { at_op, kind },
            ));
            let acked = drive(fp);
            mem.power_cut();
            recover_and_check(&mem, &acked, &format!("{kind:?}@{at_op}"));
        }
    }
}

// ---------------------------------------------------------------------------
// Heavy suites (--features faults)
// ---------------------------------------------------------------------------

/// The headline sweep: learn the total operation count from a probe run,
/// then kill the workload at *every* reachable VFS operation, once per
/// fault kind, and require full recovery each time.
#[cfg(feature = "faults")]
#[test]
fn kill_at_every_failpoint_preserves_every_acked_label() {
    let probe_mem = MemVfs::new();
    let probe = Arc::new(FailpointVfs::new(probe_mem.clone()));
    let acked = drive(probe.clone());
    let total_ops = probe.ops();
    assert_eq!(acked.len(), STEPS, "probe run must ack everything");
    assert!(
        total_ops > 60,
        "probe too small to be interesting: {total_ops} ops"
    );

    for kind in [
        FailKind::PowerCut,
        FailKind::TornWrite,
        FailKind::ShortWrite,
        FailKind::OpError,
    ] {
        for at_op in 0..total_ops {
            let mem = MemVfs::new();
            let fp = Arc::new(FailpointVfs::with_plan(
                mem.clone(),
                FailPlan { at_op, kind },
            ));
            let acked = drive(fp.clone());
            // Whatever the fault kind, the process eventually dies; only
            // durable state may be consulted.
            mem.power_cut();
            recover_and_check(&mem, &acked, &format!("{kind:?}@{at_op}"));
        }
    }
}

#[cfg(feature = "faults")]
mod random_schedules {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 48,
            ..ProptestConfig::default()
        })]

        /// Randomized crash schedules, including double faults across two
        /// successive process lifetimes on the same directory.
        #[test]
        fn double_fault_across_restarts_preserves_acked_labels(
            first_op in 0u64..160,
            second_op in 0u64..160,
            kind_a in 0usize..4,
            kind_b in 0usize..4,
        ) {
            let kinds = [
                FailKind::PowerCut,
                FailKind::TornWrite,
                FailKind::ShortWrite,
                FailKind::OpError,
            ];
            let mem = MemVfs::new();
            let fp = Arc::new(FailpointVfs::with_plan(
                mem.clone(),
                FailPlan { at_op: first_op, kind: kinds[kind_a] },
            ));
            let mut acked = drive(fp);
            mem.power_cut();
            recover_and_check(&mem, &acked, "first fault");

            // Second lifetime on the same directory, second fault.
            let fp = Arc::new(FailpointVfs::with_plan(
                mem.clone(),
                FailPlan { at_op: second_op, kind: kinds[kind_b] },
            ));
            acked.extend(drive(fp));
            mem.power_cut();
            acked.sort_by(|a, b| a.1.total_cmp(&b.1));
            acked.dedup_by(|a, b| a == b);
            recover_and_check(&mem, &acked, "second fault");
        }
    }
}
