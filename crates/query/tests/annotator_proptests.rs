//! Drift-then-query equivalence: the zone-map-pruned, batch-shared,
//! sorted-fast-path engine must be bit-identical to the row-at-a-time
//! oracle `count_naive` on every `DatasetKind` — and must stay identical
//! across every drift mutator applied *after* the index was built. A stale
//! zone map (a block whose min/max no longer bound its values, a sorted
//! flag that survived a shuffle) shows up here as a count mismatch.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use warper_query::{count_naive, Annotator, RangePredicate};
use warper_storage::drift::{append_rows, delete_rows, sort_and_truncate_half, update_rows};
use warper_storage::{generate, DatasetKind, Table};

fn kind_of(code: usize) -> DatasetKind {
    match code % 3 {
        0 => DatasetKind::Higgs,
        1 => DatasetKind::Prsa,
        _ => DatasetKind::Poker,
    }
}

/// A probe batch that exercises every plan the engine has: one range per
/// column (hits the sorted fast path on any sorted column), multi-column
/// conjunctions, an equality, an unconstrained and an empty-range
/// predicate, and an out-of-domain range (pure zone-map skip).
fn probe_preds(table: &Table, seed: u64) -> Vec<RangePredicate> {
    use rand::Rng;
    let domains = table.domains();
    let d = domains.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut preds = Vec::new();
    let range_on = |rng: &mut StdRng, p: RangePredicate, c: usize| {
        let (lo, hi) = domains[c];
        let a = rng.random_range(lo..=hi);
        let b = rng.random_range(lo..=hi);
        p.with_range(c, a.min(b), a.max(b))
    };
    for c in 0..d {
        let p = RangePredicate::unconstrained(&domains);
        preds.push(range_on(&mut rng, p, c));
    }
    for _ in 0..4 {
        let mut p = RangePredicate::unconstrained(&domains);
        for _ in 0..rng.random_range(2..=3usize) {
            let c = rng.random_range(0..d);
            p = range_on(&mut rng, p, c);
        }
        preds.push(p);
    }
    let (lo0, hi0) = domains[0];
    preds.push(RangePredicate::unconstrained(&domains).with_eq(0, (lo0 + hi0) / 2.0));
    preds.push(RangePredicate::unconstrained(&domains));
    preds.push(RangePredicate::unconstrained(&domains).with_range(0, hi0, lo0 - 1.0));
    preds.push(RangePredicate::unconstrained(&domains).with_range(0, hi0 + 1.0, hi0 + 2.0));
    preds
}

fn assert_engine_matches_naive(table: &Table, seed: u64) -> Result<(), String> {
    let preds = probe_preds(table, seed);
    let single = Annotator::with_threads(1);
    let multi = Annotator::with_threads(4);
    let batch = multi.count_batch(table, &preds);
    for (i, p) in preds.iter().enumerate() {
        let oracle = count_naive(table, p);
        prop_assert_eq!(batch[i], oracle, "batch pred {} diverged", i);
        prop_assert_eq!(single.count(table, p), oracle, "single pred {} diverged", i);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Build index → mutate → query must never read a stale zone map, for
    /// any dataset and any sequence of drift mutators.
    #[test]
    fn drifted_zone_maps_never_go_stale(
        kind_code in 0usize..3,
        rows in 600usize..1_600,
        seed in 0u64..1_000,
        ops in prop::collection::vec(0usize..4, 1..4),
        pred_seed in 0u64..1_000,
    ) {
        let kind = kind_of(kind_code);
        let mut table = generate(kind, rows, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD81F7);
        // Query once so the zone-map index is built *before* any drift.
        assert_engine_matches_naive(&table, pred_seed)?;
        for (i, &op) in ops.iter().enumerate() {
            match op {
                0 => append_rows(&mut table, rows / 5 + 1, 0.1, &mut rng),
                1 => update_rows(&mut table, 0.3, 0.25, &mut rng),
                2 => delete_rows(&mut table, 0.2, &mut rng),
                _ => {
                    let col = i % table.num_cols().max(1);
                    sort_and_truncate_half(&mut table, col);
                }
            }
            // Re-query mid-stream: the incremental refresh must agree with
            // the oracle after every single mutation.
            assert_engine_matches_naive(&table, pred_seed.wrapping_add(i as u64 + 1))?;
        }
    }

    /// The sort-and-truncate drift arms the binary-search path on the sort
    /// column; its answers must still be exact.
    #[test]
    fn sorted_fast_path_is_exact(
        kind_code in 0usize..3,
        rows in 600usize..1_600,
        seed in 0u64..1_000,
        col_code in 0usize..16,
    ) {
        let kind = kind_of(kind_code);
        let mut table = generate(kind, rows, seed);
        let col = col_code % table.num_cols();
        sort_and_truncate_half(&mut table, col);
        prop_assert!(table.zone_index().column_sorted(col));
        assert_engine_matches_naive(&table, seed ^ 0x50F7ED)?;
    }
}
