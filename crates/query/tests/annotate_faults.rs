//! Chaos/property suite (`--features faults`): the annotation degradation
//! ladder under arbitrary fault profiles.
//!
//! Property: whatever the failure rate, simulated timeout, label noise, and
//! row budget, [`ResilientAnnotator`] never panics, every label it does
//! produce is finite and non-negative, its degraded-mode counters account
//! for every unlabeled query, and the whole run replays deterministically
//! from the injector seed.
#![cfg(feature = "faults")]

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use warper_query::{
    Annotator, DegradedStats, FaultConfig, FaultInjector, RangePredicate, ResilientAnnotator,
    SamplingAnnotator,
};
use warper_storage::{generate, DatasetKind, Table};

fn table() -> &'static Table {
    static TABLE: OnceLock<Table> = OnceLock::new();
    TABLE.get_or_init(|| generate(DatasetKind::Prsa, 3_000, 7))
}

fn preds(n: usize, seed: u64) -> Vec<RangePredicate> {
    let domains = table().domains();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.random_range(0..domains.len());
            let (lo, hi) = domains[c];
            let a = rng.random_range(lo..=hi);
            let b = rng.random_range(lo..=hi);
            RangePredicate::unconstrained(&domains).with_range(c, a.min(b), a.max(b))
        })
        .collect()
}

fn run_ladder(
    cfg: FaultConfig,
    budget_rows: Option<usize>,
    with_fallback: bool,
    preds: &[RangePredicate],
) -> (Vec<Option<f64>>, DegradedStats) {
    let injector = FaultInjector::new(Box::new(Annotator::new()), cfg);
    let mut ladder = ResilientAnnotator::new(Box::new(injector));
    if with_fallback {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed);
        let sampler = SamplingAnnotator::build(table(), 200, 2, &mut rng);
        ladder = ladder.with_fallback(Box::new(sampler));
    }
    if let Some(b) = budget_rows {
        ladder = ladder.with_budget_rows(b);
    }
    ladder.begin_invocation();
    let labels = ladder.annotate_batch(table(), preds);
    (labels, ladder.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ladder_survives_any_fault_profile(
        failure_rate in 0.0f64..1.0,
        // Codes below the lower bound mean "disabled" — the vendored
        // proptest stub has no `prop::option::of`.
        timeout_code in 0usize..6_000,
        label_noise in 0.0f64..0.5,
        budget_code in 0usize..100_000,
        fallback_code in 0usize..2,
        seed in 0u64..1_000,
    ) {
        let timeout = (timeout_code >= 500).then_some(timeout_code);
        let budget = (budget_code >= 1_000).then_some(budget_code);
        let with_fallback = fallback_code == 1;
        let cfg = FaultConfig { failure_rate, timeout_rows: timeout, label_noise, seed, stall: None };
        let batch = preds(24, seed.wrapping_mul(31).wrapping_add(5));
        let (labels, stats) = run_ladder(cfg, budget, with_fallback, &batch);

        prop_assert_eq!(labels.len(), batch.len());
        for l in labels.iter().flatten() {
            prop_assert!(l.is_finite() && *l >= 0.0, "bad label {l}");
        }
        // Every unlabeled query is accounted for by a degraded-mode counter.
        let unlabeled = labels.iter().filter(|l| l.is_none()).count();
        prop_assert_eq!(unlabeled, stats.skipped + stats.deadline_skips);

        // The whole run is a pure function of the configuration.
        let (labels2, stats2) = run_ladder(cfg, budget, with_fallback, &batch);
        prop_assert_eq!(labels, labels2);
        prop_assert_eq!(stats, stats2);
    }
}
