//! Approximate annotation from samples.
//!
//! Paper §2: "Some prior works suggest using samples [9]; since predicates
//! can have a wide range of selectivities, one must use a bag of samples of
//! different types and sizes, which in turn increases the complexity to
//! maintain samples. Also, sampling-induced errors can affect model
//! quality." This module implements exactly that trade-off so the benches
//! can quantify it: a bag of uniform row samples of geometrically increasing
//! sizes; each query is answered from the smallest sample that yields enough
//! matching rows for a stable estimate, escalating to larger samples (and
//! finally the full table) for highly selective predicates.

use rand::rngs::StdRng;
use rand::Rng;
use warper_storage::{Column, Table};

use crate::annotator::Annotator;
use crate::predicate::RangePredicate;

/// A bag of uniform samples over one table.
pub struct SamplingAnnotator {
    /// Samples in increasing size; each is a materialized sub-table.
    samples: Vec<(Table, f64)>, // (sample, scale factor to full table)
    /// Exact fallback for predicates too selective for any sample.
    exact: Annotator,
    /// Matching rows required in a sample before its estimate is trusted.
    min_hits: u64,
    /// Rows in the full table.
    full_rows: usize,
}

/// Outcome of one approximate annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledCount {
    /// The (scaled) cardinality estimate.
    pub estimate: f64,
    /// Rows scanned to produce it (the cost proxy; the exact annotator
    /// scans `full_rows`).
    pub rows_scanned: usize,
    /// True when the bag escalated all the way to the exact scan.
    pub exact_fallback: bool,
}

impl SamplingAnnotator {
    /// Builds a bag of `levels` uniform samples, the smallest holding
    /// `base_rows` rows and each level 4× larger.
    pub fn build(table: &Table, base_rows: usize, levels: usize, rng: &mut StdRng) -> Self {
        let n = table.num_rows();
        let mut samples = Vec::new();
        let mut size = base_rows.max(1);
        for _ in 0..levels {
            if size >= n {
                break;
            }
            let idx: Vec<usize> = (0..size).map(|_| rng.random_range(0..n)).collect();
            let columns: Vec<Column> = table
                .columns()
                .iter()
                .map(|c| {
                    let values: Vec<f64> = idx.iter().map(|&i| c.values()[i]).collect();
                    Column::new(c.name(), c.ty(), values)
                })
                .collect();
            samples.push((Table::new("sample", columns), n as f64 / size as f64));
            size *= 4;
        }
        Self {
            samples,
            exact: Annotator::new(),
            min_hits: 32,
            full_rows: n,
        }
    }

    /// Number of sample levels materialized.
    pub fn levels(&self) -> usize {
        self.samples.len()
    }

    /// Approximate `COUNT(*)`: smallest sufficient sample wins.
    pub fn count(&self, table: &Table, pred: &RangePredicate) -> SampledCount {
        let mut rows_scanned = 0;
        for (sample, scale) in &self.samples {
            rows_scanned += sample.num_rows();
            let hits = self.exact.count(sample, pred);
            if hits >= self.min_hits {
                return SampledCount {
                    estimate: hits as f64 * scale,
                    rows_scanned,
                    exact_fallback: false,
                };
            }
        }
        // Too selective for the bag: exact scan.
        rows_scanned += self.full_rows;
        SampledCount {
            estimate: self.exact.count(table, pred) as f64,
            rows_scanned,
            exact_fallback: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use warper_storage::{generate, DatasetKind};

    fn setup() -> (Table, SamplingAnnotator) {
        let table = generate(DatasetKind::Prsa, 40_000, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let sa = SamplingAnnotator::build(&table, 500, 4, &mut rng);
        (table, sa)
    }

    #[test]
    fn unselective_predicates_use_small_samples() {
        let (table, sa) = setup();
        let p = RangePredicate::unconstrained(&table.domains());
        let r = sa.count(&table, &p);
        assert!(!r.exact_fallback);
        assert_eq!(r.rows_scanned, 500);
        assert!(
            (r.estimate - 40_000.0).abs() < 1.0,
            "estimate {}",
            r.estimate
        );
    }

    #[test]
    fn moderate_predicates_are_accurate_within_sampling_error() {
        let (table, sa) = setup();
        let exact = Annotator::new();
        let domains = table.domains();
        // Roughly half the temperature range → large cardinality.
        let (lo, hi) = domains[3];
        let p = RangePredicate::unconstrained(&domains).with_range(3, lo, (lo + hi) / 2.0);
        let truth = exact.count(&table, &p) as f64;
        let r = sa.count(&table, &p);
        assert!(
            truth > 1_000.0,
            "test premise: large cardinality, got {truth}"
        );
        let rel = (r.estimate - truth).abs() / truth;
        assert!(
            rel < 0.25,
            "relative error {rel} (est {} truth {truth})",
            r.estimate
        );
        assert!(r.rows_scanned < table.num_rows());
    }

    #[test]
    fn selective_predicates_escalate_to_exact() {
        let (table, sa) = setup();
        let exact = Annotator::new();
        let domains = table.domains();
        // A near-point predicate on a continuous column: few or no rows.
        let (lo, hi) = domains[4];
        let point = lo + 0.37 * (hi - lo);
        let p = RangePredicate::unconstrained(&domains).with_range(4, point, point + 1e-9);
        let truth = exact.count(&table, &p) as f64;
        let r = sa.count(&table, &p);
        assert!(r.exact_fallback, "selective predicate should escalate");
        assert_eq!(r.estimate, truth);
        assert!(r.rows_scanned > table.num_rows());
    }

    #[test]
    fn bag_sizes_grow_geometrically() {
        let (_, sa) = setup();
        assert_eq!(sa.levels(), 4); // 500, 2000, 8000, 32000 < 40000
    }
}
