//! Query predicates, featurization and the ground-truth annotator.
//!
//! The paper's CE models handle predicates of the form
//! `SELECT count(*) FROM T WHERE ∧ᵢ lᵢ ≤ Colᵢ ≤ uᵢ` (§2) — conjunctions of
//! two-sided ranges, with equality and one-sided ranges as special cases and
//! unconstrained columns set to the full domain. [`RangePredicate`] is that
//! class; [`Featurizer`] maps predicates to/from the
//! `{low₁..low_d, high₁..high_d}` vectors the LM model consumes (§3.2) and
//! the GAN generator emits.
//!
//! [`Annotator`] plays the role of the paper's C++ annotator `A` (§3.5): it
//! computes exact ground-truth cardinalities through the vectorized,
//! zone-map-pruned engine in [`engine`] (batch-shared block scans, sorted
//! binary-search fast path, work-stealing block parallelism), and exact
//! PK–FK join cardinalities via hash join for the MSCN join experiments.

// Index-based loops are the clearer idiom for the numerical kernels here.
#![allow(clippy::needless_range_loop)]

pub mod annotator;
pub mod engine;
pub mod faults;
pub mod featurize;
pub mod join;
pub mod predicate;
pub mod sampling_annotator;

pub use annotator::{count_naive, Annotator};
pub use engine::CountOutcome;
pub use faults::{
    AnnotateError, CountAnswer, CountService, DegradedStats, FaultConfig, FaultInjector,
    ResilientAnnotator,
};
pub use featurize::Featurizer;
pub use join::{join_cardinalities, join_count, JoinCardinalities, JoinQuery};
pub use predicate::RangePredicate;
pub use sampling_annotator::{SampledCount, SamplingAnnotator};
