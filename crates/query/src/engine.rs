//! The vectorized annotation engine: batch-shared, zone-map-pruned counting.
//!
//! Annotation is Warper's dominant adaptation cost (`c_gt`, paper §4.3).
//! The seed engine re-read each constrained column top-to-bottom for every
//! predicate independently — a batch of N picked queries cost N full passes
//! per column, plus a full all-column scan per query just to recompute the
//! table domains. This engine replaces that with:
//!
//! 1. **Zone-map pruning** ([`warper_storage::zonemap`]): per
//!    `(predicate, block)` the block stats decide *skip* (disjoint range —
//!    contributes zero without touching a value), *full* (containing range —
//!    contributes the block length without touching a value), or *scan*.
//!    Dictionary-like blocks additionally skip via their presence mask when
//!    min/max straddle the range but none of the requested ids exist.
//! 2. **Batch-shared scans**: predicates are grouped by constrained column
//!    and evaluated block-at-a-time, so one cache-resident 32 KiB column
//!    slice serves the whole batch before the next block is loaded.
//!    Single-column predicates (the common workload shape) share one pass
//!    per column per block; evaluation is a branchless compare producing a
//!    64-bit match word per chunk.
//! 3. **A hybrid dense/sparse conjunction**: multi-column predicates AND
//!    per-column match words into a chunked `u64` bitset. While the
//!    survivor fraction exceeds ~1/8 the next column is evaluated densely
//!    (branchless compare over the whole block, then intersect); below
//!    that, iterating survivor bits and probing values is cheaper than
//!    streaming the block.
//! 4. **A sorted-column fast path**: when the zone maps mark a column
//!    globally non-decreasing (e.g. after the paper's §4.1.2
//!    sort-and-truncate drift), a single-column range count is two binary
//!    searches — no blocks touched at all.
//!
//! Parallelism is work-stealing over *blocks* via
//! [`warper_linalg::parallel::run_indexed`], not contiguous chunks over
//! queries, so one expensive low-selectivity predicate can no longer pin a
//! whole thread while the others idle. Per-block partial counts are `u64`
//! sums, so the result is bit-identical regardless of thread count.
//!
//! Every count also reports the rows it actually evaluated — the
//! `rows_scanned` cost proxy the fault ladder's per-invocation budget and
//! simulated timeouts are charged against. Zone-map skips make annotation
//! cheaper *and* are accounted as cheaper, which is exactly the lever that
//! buys more labels per invocation budget.

use std::sync::Arc;

use warper_linalg::parallel::run_indexed;
use warper_storage::zonemap::{BlockStats, TableIndex};
use warper_storage::Table;

use crate::predicate::RangePredicate;

/// Survivor fraction above which the next conjunct is evaluated densely:
/// dense when `survivors * DENSE_ABOVE_ONE_IN > block_len`.
const DENSE_ABOVE_ONE_IN: usize = 8;

/// One answered count with its evaluation cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountOutcome {
    /// Exact number of matching rows.
    pub count: u64,
    /// Rows the engine actually evaluated (per-column passes and survivor
    /// probes; zone-map skips and full-block answers cost zero, binary
    /// searches cost `2⌈log₂ n⌉`). The annotation latency proxy.
    pub rows_scanned: usize,
}

/// How one predicate is answered.
enum Plan {
    /// Some column range is empty: zero matches, zero cost.
    Empty,
    /// No constrained columns: every row matches, zero cost.
    All,
    /// One constrained column and it is globally sorted: binary search.
    Sorted { col: usize },
    /// Zone-map-guided block scan over the constrained columns
    /// (narrowest range first, so the bitset shrinks as early as possible).
    Blocks { cols: Vec<usize> },
}

/// Counts every predicate in `preds` against `table`, sharing block scans
/// across the batch. Results are bit-identical to [`crate::annotator::count_naive`]
/// for any thread count.
///
/// # Panics
/// Panics if a predicate's dimension differs from the table's column count.
pub fn count_batch_with_cost(
    table: &Table,
    preds: &[RangePredicate],
    threads: usize,
) -> Vec<CountOutcome> {
    let rows = table.num_rows();
    let mut out = vec![CountOutcome::default(); preds.len()];
    if preds.is_empty() {
        return out;
    }
    for pred in preds {
        assert_eq!(pred.dim(), table.num_cols(), "predicate dimension mismatch");
    }
    if rows == 0 {
        return out;
    }
    let index = table.zone_index();
    let domains = index.domains();

    // Plan each predicate; answer the zero-cost and logarithmic plans
    // immediately, queue the rest for the shared block sweep.
    let mut scan_preds: Vec<usize> = Vec::new();
    let mut plans: Vec<Plan> = Vec::with_capacity(preds.len());
    for (i, pred) in preds.iter().enumerate() {
        let plan = plan_for(pred, &domains, &index);
        match &plan {
            Plan::Empty => {}
            Plan::All => out[i].count = rows as u64,
            Plan::Sorted { col } => {
                let (count, cost) = sorted_count(table, *col, pred);
                out[i] = CountOutcome {
                    count,
                    rows_scanned: cost,
                };
            }
            Plan::Blocks { .. } => scan_preds.push(i),
        }
        plans.push(plan);
    }
    if scan_preds.is_empty() {
        return out;
    }

    let nb = index.n_blocks();
    let partials = run_indexed(nb, threads, |b| {
        process_block(table, &index, preds, &plans, &scan_preds, b)
    });
    for part in &partials {
        for (k, &(count, cost)) in part.iter().enumerate() {
            let o = &mut out[scan_preds[k]];
            o.count += count;
            o.rows_scanned += cost;
        }
    }
    out
}

fn plan_for(pred: &RangePredicate, domains: &[(f64, f64)], index: &TableIndex) -> Plan {
    if pred.is_empty_range() {
        return Plan::Empty;
    }
    let mut cols = pred.constrained_columns(domains);
    if cols.is_empty() {
        return Plan::All;
    }
    if cols.len() == 1 && index.column_sorted(cols[0]) {
        return Plan::Sorted { col: cols[0] };
    }
    // Narrowest relative range first (uniformity assumption): the bitset
    // shrinks as early as possible so later conjuncts go sparse sooner.
    // Pure reordering of the same filters — counts are unchanged.
    let est = |c: usize| -> f64 {
        let (dlo, dhi) = domains[c];
        let width = dhi - dlo;
        if width <= 0.0 {
            return 1.0;
        }
        let lo = pred.lows[c].max(dlo);
        let hi = pred.highs[c].min(dhi);
        ((hi - lo) / width).clamp(0.0, 1.0)
    };
    cols.sort_by(|&a, &b| est(a).total_cmp(&est(b)));
    Plan::Blocks { cols }
}

/// Binary-search count on a globally sorted column.
fn sorted_count(table: &Table, col: usize, pred: &RangePredicate) -> (u64, usize) {
    let values = table.column(col).values();
    let (lo, hi) = (pred.lows[col], pred.highs[col]);
    let first = values.partition_point(|&v| v < lo);
    let past = values.partition_point(|&v| v <= hi);
    let probes = 2 * (usize::BITS - values.len().leading_zeros()) as usize;
    ((past - first) as u64, probes)
}

/// Per-(predicate, block) zone-map decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockClass {
    /// Range disjoint from the block: zero matches, zero cost.
    Skip,
    /// Range contains the block: every row matches this conjunct.
    Full,
    /// Block straddles the range: values must be evaluated.
    Scan,
}

fn classify(s: &BlockStats, lo: f64, hi: f64) -> BlockClass {
    if !s.finite {
        // min/max ignore non-finite values; never prune such blocks.
        return BlockClass::Scan;
    }
    if lo > s.max || hi < s.min {
        return BlockClass::Skip;
    }
    if lo <= s.min && s.max <= hi {
        return BlockClass::Full;
    }
    if s.masked {
        // Dictionary-like block: check which of the requested ids exist.
        let a = (lo - s.min).ceil().max(0.0);
        let b = (hi - s.min).floor().min(63.0);
        if a > b {
            return BlockClass::Skip;
        }
        let (a, b) = (a as u32, b as u32);
        let width = b - a + 1;
        let window = if width >= 64 {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << a
        };
        if s.mask & window == 0 {
            return BlockClass::Skip;
        }
        if s.mask & !window == 0 {
            // Every id present in the block lies inside the range.
            return BlockClass::Full;
        }
    }
    BlockClass::Scan
}

/// Branchless evaluation of up to 64 values against `[lo, hi]`, one match
/// bit per value.
#[inline]
fn eval_chunk(values: &[f64], lo: f64, hi: f64) -> u64 {
    let mut bits = 0u64;
    for (i, &v) in values.iter().enumerate() {
        bits |= (((v >= lo) & (v <= hi)) as u64) << i;
    }
    bits
}

/// Counts all scan-planned predicates against block `b`. Returns
/// `(count, rows_evaluated)` per predicate, in `scan_preds` order.
fn process_block(
    table: &Table,
    index: &Arc<TableIndex>,
    preds: &[RangePredicate],
    plans: &[Plan],
    scan_preds: &[usize],
    b: usize,
) -> Vec<(u64, usize)> {
    let (start, end) = index.block_range(b);
    let len = end - start;
    let mut res = vec![(0u64, 0usize); scan_preds.len()];

    // Phase 1: classify each predicate's conjuncts against this block.
    // Single-scan-column predicates are grouped per column for the shared
    // pass; multi-column ones keep their scan list for the bitset path.
    let mut shared: Vec<(usize, Vec<usize>)> = Vec::new(); // (col, pred slots)
    let mut multi: Vec<(usize, Vec<usize>)> = Vec::new(); // (slot, scan cols)
    let mut scratch: Vec<usize> = Vec::new();
    'preds: for (k, &pi) in scan_preds.iter().enumerate() {
        let Plan::Blocks { cols } = &plans[pi] else {
            continue;
        };
        let pred = &preds[pi];
        scratch.clear();
        for &c in cols {
            match classify(&index.column(c).blocks[b], pred.lows[c], pred.highs[c]) {
                BlockClass::Skip => continue 'preds,
                BlockClass::Full => {}
                BlockClass::Scan => scratch.push(c),
            }
        }
        match scratch.len() {
            // All conjuncts contain the block: count it without scanning.
            0 => res[k].0 = len as u64,
            1 => {
                let c = scratch[0];
                match shared.iter_mut().find(|(sc, _)| *sc == c) {
                    Some((_, slots)) => slots.push(k),
                    None => shared.push((c, vec![k])),
                }
            }
            _ => multi.push((k, scratch.clone())),
        }
    }

    // Phase 2: one shared cache-resident pass per column for the
    // single-scan-column group — each 64-value chunk is loaded once and
    // evaluated for every predicate constraining that column.
    for (c, slots) in &shared {
        let values = &table.column(*c).values()[start..end];
        for chunk in values.chunks(64) {
            for &k in slots {
                let pi = scan_preds[k];
                let bits = eval_chunk(chunk, preds[pi].lows[*c], preds[pi].highs[*c]);
                res[k].0 += u64::from(bits.count_ones());
            }
        }
        for &k in slots {
            res[k].1 += len;
        }
    }

    // Phase 3: multi-column conjunctions over a chunked u64 bitset, dense
    // while survivors are plentiful, sparse probes once they are rare.
    let words = len.div_ceil(64);
    let mut bitset = vec![0u64; words];
    for (k, scan_cols) in &multi {
        let pi = scan_preds[*k];
        let pred = &preds[pi];
        let mut cost = 0usize;

        // First conjunct fills the bitset densely.
        let c0 = scan_cols[0];
        let values = &table.column(c0).values()[start..end];
        for (w, chunk) in values.chunks(64).enumerate() {
            bitset[w] = eval_chunk(chunk, pred.lows[c0], pred.highs[c0]);
        }
        cost += len;
        let mut survivors: u64 = bitset.iter().map(|w| u64::from(w.count_ones())).sum();

        for &c in &scan_cols[1..] {
            if survivors == 0 {
                break;
            }
            let (lo, hi) = (pred.lows[c], pred.highs[c]);
            let values = &table.column(c).values()[start..end];
            if survivors as usize * DENSE_ABOVE_ONE_IN > len {
                // Dense: branchless compare over the block, then intersect.
                for (w, chunk) in values.chunks(64).enumerate() {
                    bitset[w] &= eval_chunk(chunk, lo, hi);
                }
                cost += len;
            } else {
                // Sparse: probe only surviving row indices.
                cost += survivors as usize;
                for w in 0..words {
                    let mut m = bitset[w];
                    while m != 0 {
                        let bit = m.trailing_zeros();
                        let v = values[w * 64 + bit as usize];
                        if !(v >= lo && v <= hi) {
                            bitset[w] &= !(1u64 << bit);
                        }
                        m &= m - 1;
                    }
                }
            }
            survivors = bitset.iter().map(|w| u64::from(w.count_ones())).sum();
        }
        res[*k] = (survivors, cost);
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotator::count_naive;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use warper_storage::{generate, DatasetKind};

    fn random_preds(
        domains: &[(f64, f64)],
        n: usize,
        max_cols: usize,
        seed: u64,
    ) -> Vec<RangePredicate> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut p = RangePredicate::unconstrained(domains);
                for _ in 0..rng.random_range(1..=max_cols) {
                    let c = rng.random_range(0..domains.len());
                    let (lo, hi) = domains[c];
                    let a = rng.random_range(lo..=hi);
                    let b = rng.random_range(lo..=hi);
                    p = p.with_range(c, a.min(b), a.max(b));
                }
                p
            })
            .collect()
    }

    #[test]
    fn engine_matches_naive_across_datasets() {
        for (kind, seed) in [
            (DatasetKind::Higgs, 1u64),
            (DatasetKind::Prsa, 2),
            (DatasetKind::Poker, 3),
        ] {
            let table = generate(kind, 6_000, seed);
            let preds = random_preds(&table.domains(), 30, 3, seed ^ 99);
            let got = count_batch_with_cost(&table, &preds, 4);
            for (p, o) in preds.iter().zip(&got) {
                assert_eq!(o.count, count_naive(&table, p), "{kind:?}");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_answers() {
        let table = generate(DatasetKind::Prsa, 9_000, 5);
        let preds = random_preds(&table.domains(), 24, 3, 7);
        let one = count_batch_with_cost(&table, &preds, 1);
        for threads in [2, 3, 8] {
            assert_eq!(one, count_batch_with_cost(&table, &preds, threads));
        }
    }

    #[test]
    fn skip_blocks_cost_nothing() {
        let table = generate(DatasetKind::Higgs, 10_000, 2);
        let domains = table.domains();
        // Out-of-domain range: constrained but disjoint from every block.
        let (_, hi) = domains[2];
        let p = RangePredicate::unconstrained(&domains).with_range(2, hi + 1.0, hi + 2.0);
        let o = &count_batch_with_cost(&table, std::slice::from_ref(&p), 1)[0];
        assert_eq!(o.count, 0);
        assert_eq!(o.rows_scanned, 0, "fully pruned predicates must be free");
    }

    #[test]
    fn sorted_column_uses_binary_search() {
        let table = {
            let mut t = generate(DatasetKind::Higgs, 20_000, 4);
            warper_storage::drift::sort_and_truncate_half(&mut t, 4);
            t
        };
        assert!(table.zone_index().column_sorted(4));
        let domains = table.domains();
        let (lo, hi) = domains[4];
        let p = RangePredicate::unconstrained(&domains).with_range(
            4,
            lo + 0.2 * (hi - lo),
            lo + 0.7 * (hi - lo),
        );
        let o = &count_batch_with_cost(&table, std::slice::from_ref(&p), 1)[0];
        assert_eq!(o.count, count_naive(&table, &p));
        assert!(
            o.rows_scanned <= 2 * 64,
            "binary search cost, got {}",
            o.rows_scanned
        );
    }

    #[test]
    fn unconstrained_and_empty_cost_nothing() {
        let table = generate(DatasetKind::Poker, 5_000, 6);
        let domains = table.domains();
        let all = RangePredicate::unconstrained(&domains);
        let none = RangePredicate::unconstrained(&domains).with_range(0, 2.0, 1.0);
        let got = count_batch_with_cost(&table, &[all, none], 2);
        assert_eq!(
            got[0],
            CountOutcome {
                count: 5_000,
                rows_scanned: 0
            }
        );
        assert_eq!(
            got[1],
            CountOutcome {
                count: 0,
                rows_scanned: 0
            }
        );
    }

    #[test]
    fn dictionary_masks_prune_absent_ids() {
        use warper_storage::{Column, ColumnType};
        // Categorical column holding only even ids: an odd-id equality
        // predicate straddles min/max but the presence mask skips it.
        let values: Vec<f64> = (0..5_000).map(|i| ((i * 2) % 20) as f64).collect();
        let table = Table::new("t", vec![Column::new("c", ColumnType::Categorical, values)]);
        let domains = table.domains();
        let p = RangePredicate::unconstrained(&domains).with_eq(0, 3.0);
        let o = &count_batch_with_cost(&table, std::slice::from_ref(&p), 1)[0];
        assert_eq!(o.count, 0);
        assert_eq!(o.rows_scanned, 0, "mask should skip every block");
    }
}
