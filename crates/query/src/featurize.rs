//! Predicate ⇄ feature-vector mapping.
//!
//! LM featurizes a predicate as `{low₁..low_d, high₁..high_d}` (paper §3.2),
//! normalized per column. The featurizer captures the column domains at
//! model-training time so that features stay consistent even after data
//! drift shifts the live table's min/max.
//!
//! The inverse mapping ([`Featurizer::defeaturize`]) is what turns the GAN
//! generator's raw output vectors back into well-formed predicates: values
//! are clamped to the domain and swapped if `low > high`.

use crate::predicate::RangePredicate;
use warper_storage::Table;

/// Maps predicates over one table to normalized `2d` feature vectors.
#[derive(Debug, Clone)]
pub struct Featurizer {
    domains: Vec<(f64, f64)>,
}

impl Featurizer {
    /// Captures the domains of `table`'s columns.
    pub fn from_table(table: &Table) -> Self {
        Self {
            domains: table.domains(),
        }
    }

    /// Builds from explicit domains.
    pub fn from_domains(domains: Vec<(f64, f64)>) -> Self {
        Self { domains }
    }

    /// Number of table columns `d`.
    pub fn num_columns(&self) -> usize {
        self.domains.len()
    }

    /// Feature dimension `2d`.
    pub fn dim(&self) -> usize {
        2 * self.domains.len()
    }

    /// The captured per-column domains.
    pub fn domains(&self) -> &[(f64, f64)] {
        &self.domains
    }

    #[inline]
    fn norm(&self, col: usize, v: f64) -> f64 {
        let (lo, hi) = self.domains[col];
        if hi > lo {
            ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            0.5
        }
    }

    #[inline]
    fn denorm(&self, col: usize, v: f64) -> f64 {
        let (lo, hi) = self.domains[col];
        lo + v.clamp(0.0, 1.0) * (hi - lo)
    }

    /// Encodes a predicate as `[low₁..low_d, high₁..high_d]`, each in [0,1].
    ///
    /// # Panics
    /// Panics if the predicate's dimension differs from the table's.
    pub fn featurize(&self, p: &RangePredicate) -> Vec<f64> {
        assert_eq!(p.dim(), self.num_columns(), "predicate dimension mismatch");
        let d = self.num_columns();
        let mut out = Vec::with_capacity(2 * d);
        for c in 0..d {
            out.push(self.norm(c, p.lows[c]));
        }
        for c in 0..d {
            out.push(self.norm(c, p.highs[c]));
        }
        out
    }

    /// Decodes a raw feature vector into a well-formed predicate: values are
    /// clamped to [0,1], mapped back to the column domain, and each column's
    /// bounds are swapped if inverted.
    ///
    /// # Panics
    /// Panics if `feat.len() != 2d`.
    pub fn defeaturize(&self, feat: &[f64]) -> RangePredicate {
        let d = self.num_columns();
        assert_eq!(feat.len(), 2 * d, "feature length mismatch");
        let mut lows = Vec::with_capacity(d);
        let mut highs = Vec::with_capacity(d);
        for c in 0..d {
            let mut lo = self.denorm(c, feat[c]);
            let mut hi = self.denorm(c, feat[d + c]);
            if lo > hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            lows.push(lo);
            highs.push(hi);
        }
        RangePredicate::new(lows, highs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn featurizer() -> Featurizer {
        Featurizer::from_domains(vec![(0.0, 10.0), (100.0, 200.0)])
    }

    #[test]
    fn roundtrip() {
        let f = featurizer();
        let p = RangePredicate::new(vec![2.0, 150.0], vec![8.0, 180.0]);
        let feat = f.featurize(&p);
        assert_eq!(feat, vec![0.2, 0.5, 0.8, 0.8]);
        let back = f.defeaturize(&feat);
        assert_eq!(back, p);
    }

    #[test]
    fn unconstrained_maps_to_unit_box() {
        let f = featurizer();
        let p = RangePredicate::unconstrained(f.domains());
        assert_eq!(f.featurize(&p), vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn defeaturize_clamps_and_swaps() {
        let f = featurizer();
        // Out-of-range features and inverted bounds.
        let p = f.defeaturize(&[-0.5, 0.9, 2.0, 0.1]);
        assert_eq!(p.lows[0], 0.0);
        assert_eq!(p.highs[0], 10.0);
        // Column 1 had low=0.9, high=0.1 → swapped.
        assert_eq!(p.lows[1], 110.0);
        assert_eq!(p.highs[1], 190.0);
        assert!(!p.is_empty_range());
    }

    #[test]
    fn degenerate_domain_is_stable() {
        let f = Featurizer::from_domains(vec![(5.0, 5.0)]);
        let p = RangePredicate::new(vec![5.0], vec![5.0]);
        let feat = f.featurize(&p);
        assert_eq!(feat, vec![0.5, 0.5]);
        let back = f.defeaturize(&feat);
        assert_eq!(back.lows[0], 5.0);
        assert_eq!(back.highs[0], 5.0);
    }

    #[test]
    fn dim_accessors() {
        let f = featurizer();
        assert_eq!(f.num_columns(), 2);
        assert_eq!(f.dim(), 4);
    }
}
