//! Key–foreign-key join queries and their exact cardinalities.
//!
//! MSCN (paper §2, §4.1.2) estimates cardinalities of join expressions; the
//! end-to-end study (§4.2) runs `σ(L) ⋈ σ(O)` templates. This module
//! provides the query type and an exact hash-join counter used both as the
//! annotator for join CE training labels and as the truth oracle for the
//! query-optimizer simulator.

use std::collections::HashMap;

use crate::annotator::Annotator;
use crate::predicate::RangePredicate;
use warper_storage::Table;

/// An equi-join between two filtered tables:
/// `SELECT count(*) FROM L, R WHERE L.key = R.key AND σ_L AND σ_R`.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// Predicate over the left table.
    pub left_pred: RangePredicate,
    /// Predicate over the right table.
    pub right_pred: RangePredicate,
    /// Join column index in the left table.
    pub left_key: usize,
    /// Join column index in the right table.
    pub right_key: usize,
}

/// Exact join cardinality via hash join.
///
/// Builds a key → multiplicity map over the filtered right side, then probes
/// with the filtered left side. Join keys are compared by their `f64` bit
/// pattern (all keys in this codebase are integral ids stored exactly).
pub fn join_count(left: &Table, right: &Table, q: &JoinQuery) -> u64 {
    let mut build: HashMap<u64, u64> = HashMap::new();
    let rkeys = right.column(q.right_key).values();
    for row in 0..right.num_rows() {
        if q.right_pred.matches_row(right, row) {
            *build.entry(rkeys[row].to_bits()).or_insert(0) += 1;
        }
    }
    if build.is_empty() {
        return 0;
    }
    let lkeys = left.column(q.left_key).values();
    let mut total = 0u64;
    for row in 0..left.num_rows() {
        if q.left_pred.matches_row(left, row) {
            if let Some(&m) = build.get(&lkeys[row].to_bits()) {
                total += m;
            }
        }
    }
    total
}

/// Cardinalities of the two filtered inputs and the join output, the triple
/// the query-optimizer simulator needs for its plan decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinCardinalities {
    /// `|σ(L)|`
    pub left: u64,
    /// `|σ(R)|`
    pub right: u64,
    /// `|σ(L) ⋈ σ(R)|`
    pub join: u64,
}

/// Computes all three cardinalities for a join query.
pub fn join_cardinalities(left: &Table, right: &Table, q: &JoinQuery) -> JoinCardinalities {
    let a = Annotator::new();
    JoinCardinalities {
        left: a.count(left, &q.left_pred),
        right: a.count(right, &q.right_pred),
        join: join_count(left, right, q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warper_storage::tpch::{generate_tpch, TpchScale};
    use warper_storage::{Column, ColumnType, Table};

    fn tiny_pair() -> (Table, Table) {
        // left keys: [0,0,1,2], right keys: [0,1,1,3]
        let left = Table::new(
            "l",
            vec![
                Column::new("k", ColumnType::Real, vec![0.0, 0.0, 1.0, 2.0]),
                Column::new("v", ColumnType::Real, vec![10.0, 20.0, 30.0, 40.0]),
            ],
        );
        let right = Table::new(
            "r",
            vec![
                Column::new("k", ColumnType::Real, vec![0.0, 1.0, 1.0, 3.0]),
                Column::new("w", ColumnType::Real, vec![1.0, 2.0, 3.0, 4.0]),
            ],
        );
        (left, right)
    }

    #[test]
    fn unfiltered_join_count() {
        let (l, r) = tiny_pair();
        let q = JoinQuery {
            left_pred: RangePredicate::unconstrained(&l.domains()),
            right_pred: RangePredicate::unconstrained(&r.domains()),
            left_key: 0,
            right_key: 0,
        };
        // key 0: 2×1, key 1: 1×2, key 2: 0, key 3: 0 → 4.
        assert_eq!(join_count(&l, &r, &q), 4);
    }

    #[test]
    fn filters_reduce_join() {
        let (l, r) = tiny_pair();
        let q = JoinQuery {
            left_pred: RangePredicate::unconstrained(&l.domains()).with_range(1, 15.0, 35.0),
            right_pred: RangePredicate::unconstrained(&r.domains()).with_range(1, 2.0, 3.0),
            left_key: 0,
            right_key: 0,
        };
        // Left survivors: rows 1 (k=0), 2 (k=1). Right survivors: rows 1,2 (k=1,1).
        // k=0 matches none, k=1 matches 2 → 2.
        assert_eq!(join_count(&l, &r, &q), 2);
        let cards = join_cardinalities(&l, &r, &q);
        assert_eq!(
            cards,
            JoinCardinalities {
                left: 2,
                right: 2,
                join: 2
            }
        );
    }

    #[test]
    fn pk_fk_join_equals_filtered_fk_side() {
        // With an unfiltered PK side, |σ(L) ⋈ O| == |σ(L)| for FK joins.
        let t = generate_tpch(TpchScale::tiny(), 8);
        let q = JoinQuery {
            left_pred: RangePredicate::unconstrained(&t.lineitem.domains())
                .with_range(1, 10.0, 20.0), // quantity
            right_pred: RangePredicate::unconstrained(&t.orders.domains()),
            left_key: 0,
            right_key: 0,
        };
        let cards = join_cardinalities(&t.lineitem, &t.orders, &q);
        assert_eq!(cards.join, cards.left);
    }

    #[test]
    fn empty_side_yields_zero() {
        let (l, r) = tiny_pair();
        let q = JoinQuery {
            left_pred: RangePredicate::unconstrained(&l.domains()),
            right_pred: RangePredicate::unconstrained(&r.domains()).with_range(1, 100.0, 200.0),
            left_key: 0,
            right_key: 0,
        };
        assert_eq!(join_count(&l, &r, &q), 0);
    }
}
