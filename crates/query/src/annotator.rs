//! The ground-truth annotator `A` (paper Figure 4 / §3.5).
//!
//! "The annotator A computes ground truth for query predicates and can be a
//! DBMS query or custom code." Here it is custom code: the vectorized,
//! zone-map-pruned engine in [`crate::engine`]. Whole predicate batches are
//! evaluated with one cache-resident pass per column per block, blocks are
//! skipped or counted outright from their zone maps, sorted columns answer
//! by binary search, and parallelism is work-stealing over blocks — so the
//! paper's observation that annotation "scans the underlying table at least
//! once" (the dominant adaptation cost, `c_gt` in §4.3) becomes a worst
//! case rather than the rule. [`count_naive`] remains the oracle: every
//! engine answer is bit-identical to a row-at-a-time scan.

use warper_storage::Table;

use crate::engine::{self, CountOutcome};
use crate::predicate::RangePredicate;

/// Exact cardinality annotator over columnar tables.
#[derive(Debug, Clone)]
pub struct Annotator {
    threads: usize,
}

impl Default for Annotator {
    fn default() -> Self {
        Self::new()
    }
}

impl Annotator {
    /// An annotator using all available parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self { threads }
    }

    /// An annotator restricted to `threads` worker threads (used for the
    /// single-thread cost accounting in Table 6).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Exact `COUNT(*)` of rows in `table` matching `pred`.
    pub fn count(&self, table: &Table, pred: &RangePredicate) -> u64 {
        self.count_with_cost(table, pred).count
    }

    /// Exact count plus the rows the engine actually evaluated — the
    /// latency proxy the fault ladder budgets against.
    pub fn count_with_cost(&self, table: &Table, pred: &RangePredicate) -> CountOutcome {
        let got = engine::count_batch_with_cost(table, std::slice::from_ref(pred), self.threads);
        got[0]
    }

    /// Selectivity of `pred` in [0, 1].
    pub fn selectivity(&self, table: &Table, pred: &RangePredicate) -> f64 {
        if table.num_rows() == 0 {
            return 0.0;
        }
        self.count(table, pred) as f64 / table.num_rows() as f64
    }

    /// Annotates a batch of predicates with one shared, zone-map-pruned
    /// sweep over the table's blocks.
    pub fn count_batch(&self, table: &Table, preds: &[RangePredicate]) -> Vec<u64> {
        self.count_batch_with_cost(table, preds)
            .into_iter()
            .map(|o| o.count)
            .collect()
    }

    /// Batch annotation with per-predicate evaluation costs.
    pub fn count_batch_with_cost(
        &self,
        table: &Table,
        preds: &[RangePredicate],
    ) -> Vec<CountOutcome> {
        engine::count_batch_with_cost(table, preds, self.threads)
    }
}

/// Brute-force row-at-a-time count, used as the test oracle for the
/// vectorized path.
pub fn count_naive(table: &Table, pred: &RangePredicate) -> u64 {
    (0..table.num_rows())
        .filter(|&r| pred.matches_row(table, r))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use warper_storage::{generate, DatasetKind};

    #[test]
    fn count_matches_naive_on_random_predicates() {
        let table = generate(DatasetKind::Prsa, 2_000, 11);
        let domains = table.domains();
        let mut rng = StdRng::seed_from_u64(21);
        let a = Annotator::new();
        for _ in 0..50 {
            let mut p = RangePredicate::unconstrained(&domains);
            // Constrain 1–3 random columns.
            for _ in 0..rng.random_range(1..=3usize) {
                let c = rng.random_range(0..domains.len());
                let (lo, hi) = domains[c];
                let a1 = rng.random_range(lo..=hi);
                let a2 = rng.random_range(lo..=hi);
                p = p.with_range(c, a1.min(a2), a1.max(a2));
            }
            assert_eq!(a.count(&table, &p), count_naive(&table, &p));
        }
    }

    #[test]
    fn selectivity_ordering_preserves_counts() {
        // A wide filter on column 0 and a narrow one on a later column: the
        // planner evaluates the narrow one first, and the answer must still
        // match the row-at-a-time oracle.
        let table = generate(DatasetKind::Higgs, 2_500, 9);
        let domains = table.domains();
        let (lo0, hi0) = domains[0];
        let c = domains.len() - 1;
        let (loc, hic) = domains[c];
        let p = RangePredicate::unconstrained(&domains)
            .with_range(0, lo0, lo0 + 0.9 * (hi0 - lo0))
            .with_range(c, loc, loc + 0.05 * (hic - loc));
        let a = Annotator::new();
        assert_eq!(a.count(&table, &p), count_naive(&table, &p));
    }

    #[test]
    fn unconstrained_counts_all_rows() {
        let table = generate(DatasetKind::Poker, 777, 1);
        let a = Annotator::new();
        let p = RangePredicate::unconstrained(&table.domains());
        assert_eq!(a.count(&table, &p), 777);
        assert_eq!(a.selectivity(&table, &p), 1.0);
    }

    #[test]
    fn empty_range_counts_zero() {
        let table = generate(DatasetKind::Poker, 100, 2);
        let a = Annotator::new();
        let p = RangePredicate::unconstrained(&table.domains()).with_range(0, 3.0, 1.0);
        assert_eq!(a.count(&table, &p), 0);
    }

    #[test]
    fn batch_matches_single() {
        let table = generate(DatasetKind::Higgs, 3_000, 3);
        let domains = table.domains();
        let mut rng = StdRng::seed_from_u64(5);
        let preds: Vec<RangePredicate> = (0..40)
            .map(|_| {
                let c = rng.random_range(0..domains.len());
                let (lo, hi) = domains[c];
                let a1 = rng.random_range(lo..=hi);
                let a2 = rng.random_range(lo..=hi);
                RangePredicate::unconstrained(&domains).with_range(c, a1.min(a2), a1.max(a2))
            })
            .collect();
        let a = Annotator::new();
        let batch = a.count_batch(&table, &preds);
        for (p, &b) in preds.iter().zip(&batch) {
            assert_eq!(a.count(&table, p), b);
        }
        // The single-thread path gives the same answers.
        let st = Annotator::with_threads(1).count_batch(&table, &preds);
        assert_eq!(batch, st);
    }

    #[test]
    fn equality_predicate_on_categorical() {
        let table = generate(DatasetKind::Poker, 5_000, 4);
        let a = Annotator::new();
        let domains = table.domains();
        let p = RangePredicate::unconstrained(&domains).with_eq(0, 2.0);
        let count = a.count(&table, &p);
        // Suits are uniform over 4 values.
        assert!((count as f64 - 1250.0).abs() < 150.0, "count {count}");
    }

    #[test]
    fn cost_reflects_pruning() {
        let table = generate(DatasetKind::Higgs, 20_000, 8);
        let a = Annotator::with_threads(1);
        let domains = table.domains();
        // A full-width scan predicate touches about one column's worth of
        // rows; an unconstrained one touches none.
        let (lo, hi) = domains[4];
        let scan = RangePredicate::unconstrained(&domains).with_range(
            4,
            lo + 0.3 * (hi - lo),
            lo + 0.6 * (hi - lo),
        );
        let cost = a.count_with_cost(&table, &scan).rows_scanned;
        assert!(cost > 0 && cost <= table.num_rows(), "cost {cost}");
        let free = RangePredicate::unconstrained(&domains);
        assert_eq!(a.count_with_cost(&table, &free).rows_scanned, 0);
    }
}
