//! The ground-truth annotator `A` (paper Figure 4 / §3.5).
//!
//! "The annotator A computes ground truth for query predicates and can be a
//! DBMS query or custom code." Here it is custom code: an exact columnar
//! scan. Column pruning (only constrained columns are checked) plus a
//! selection-vector pipeline keeps single-query latency low; batches are
//! parallelized across queries with crossbeam scoped threads, mirroring the
//! paper's observation that annotation "scans the underlying table at least
//! once" and is the dominant adaptation cost (`c_gt` in §4.3).

use crate::predicate::RangePredicate;
use warper_storage::Table;

/// Exact cardinality annotator over columnar tables.
#[derive(Debug, Clone)]
pub struct Annotator {
    threads: usize,
}

impl Default for Annotator {
    fn default() -> Self {
        Self::new()
    }
}

impl Annotator {
    /// An annotator using all available parallelism for batches.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self { threads }
    }

    /// An annotator restricted to `threads` worker threads (used for the
    /// single-thread cost accounting in Table 6).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Exact `COUNT(*)` of rows in `table` matching `pred`.
    pub fn count(&self, table: &Table, pred: &RangePredicate) -> u64 {
        assert_eq!(pred.dim(), table.num_cols(), "predicate dimension mismatch");
        if pred.is_empty_range() {
            return 0;
        }
        let domains = table.domains();
        let mut cols = pred.constrained_columns(&domains);
        if cols.is_empty() {
            return table.num_rows() as u64;
        }
        // Evaluate the most selective column first (narrowest range/domain
        // ratio, a uniformity assumption): the selection vector shrinks as
        // early as possible, so later columns probe far fewer rows. Ties
        // (and zero-width domains) keep the original column order, so this
        // is a pure reordering of the same per-column filters — the result
        // is unchanged and `count_naive` stays the oracle.
        let est = |c: usize| -> f64 {
            let (dlo, dhi) = domains[c];
            let width = dhi - dlo;
            if width <= 0.0 {
                return 1.0;
            }
            let lo = pred.lows[c].max(dlo);
            let hi = pred.highs[c].min(dhi);
            ((hi - lo) / width).clamp(0.0, 1.0)
        };
        cols.sort_by(|&a, &b| est(a).total_cmp(&est(b)));

        // First constrained column: scan everything, collect survivors.
        let c0 = cols[0];
        let (lo, hi) = (pred.lows[c0], pred.highs[c0]);
        let values = table.column(c0).values();
        let mut selection: Vec<u32> = Vec::with_capacity(values.len() / 4);
        for (i, &v) in values.iter().enumerate() {
            if v >= lo && v <= hi {
                selection.push(i as u32);
            }
        }
        // Remaining columns: shrink the selection vector.
        for &c in &cols[1..] {
            if selection.is_empty() {
                break;
            }
            let (lo, hi) = (pred.lows[c], pred.highs[c]);
            let values = table.column(c).values();
            selection.retain(|&i| {
                let v = values[i as usize];
                v >= lo && v <= hi
            });
        }
        selection.len() as u64
    }

    /// Selectivity of `pred` in [0, 1].
    pub fn selectivity(&self, table: &Table, pred: &RangePredicate) -> f64 {
        if table.num_rows() == 0 {
            return 0.0;
        }
        self.count(table, pred) as f64 / table.num_rows() as f64
    }

    /// Annotates a batch of predicates, parallelized across queries.
    pub fn count_batch(&self, table: &Table, preds: &[RangePredicate]) -> Vec<u64> {
        if preds.len() < 4 || self.threads == 1 {
            return preds.iter().map(|p| self.count(table, p)).collect();
        }
        let chunk = preds.len().div_ceil(self.threads);
        let mut out = vec![0u64; preds.len()];
        let scope_result = crossbeam::scope(|s| {
            for (preds_chunk, out_chunk) in preds.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move |_| {
                    for (p, o) in preds_chunk.iter().zip(out_chunk.iter_mut()) {
                        *o = self.count(table, p);
                    }
                });
            }
        });
        if let Err(payload) = scope_result {
            // A worker panicked; re-raise the original panic on this thread
            // instead of masking it behind a second, less informative one.
            std::panic::resume_unwind(payload);
        }
        out
    }
}

/// Brute-force row-at-a-time count, used as the test oracle for the
/// vectorized path.
pub fn count_naive(table: &Table, pred: &RangePredicate) -> u64 {
    (0..table.num_rows())
        .filter(|&r| pred.matches_row(table, r))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use warper_storage::{generate, DatasetKind};

    #[test]
    fn count_matches_naive_on_random_predicates() {
        let table = generate(DatasetKind::Prsa, 2_000, 11);
        let domains = table.domains();
        let mut rng = StdRng::seed_from_u64(21);
        let a = Annotator::new();
        for _ in 0..50 {
            let mut p = RangePredicate::unconstrained(&domains);
            // Constrain 1–3 random columns.
            for _ in 0..rng.random_range(1..=3usize) {
                let c = rng.random_range(0..domains.len());
                let (lo, hi) = domains[c];
                let a1 = rng.random_range(lo..=hi);
                let a2 = rng.random_range(lo..=hi);
                p = p.with_range(c, a1.min(a2), a1.max(a2));
            }
            assert_eq!(a.count(&table, &p), count_naive(&table, &p));
        }
    }

    #[test]
    fn selectivity_ordering_preserves_counts() {
        // A wide filter on column 0 and a narrow one on a later column: the
        // planner evaluates the narrow one first, and the answer must still
        // match the row-at-a-time oracle.
        let table = generate(DatasetKind::Higgs, 2_500, 9);
        let domains = table.domains();
        let (lo0, hi0) = domains[0];
        let c = domains.len() - 1;
        let (loc, hic) = domains[c];
        let p = RangePredicate::unconstrained(&domains)
            .with_range(0, lo0, lo0 + 0.9 * (hi0 - lo0))
            .with_range(c, loc, loc + 0.05 * (hic - loc));
        let a = Annotator::new();
        assert_eq!(a.count(&table, &p), count_naive(&table, &p));
    }

    #[test]
    fn unconstrained_counts_all_rows() {
        let table = generate(DatasetKind::Poker, 777, 1);
        let a = Annotator::new();
        let p = RangePredicate::unconstrained(&table.domains());
        assert_eq!(a.count(&table, &p), 777);
        assert_eq!(a.selectivity(&table, &p), 1.0);
    }

    #[test]
    fn empty_range_counts_zero() {
        let table = generate(DatasetKind::Poker, 100, 2);
        let a = Annotator::new();
        let p = RangePredicate::unconstrained(&table.domains()).with_range(0, 3.0, 1.0);
        assert_eq!(a.count(&table, &p), 0);
    }

    #[test]
    fn batch_matches_single() {
        let table = generate(DatasetKind::Higgs, 3_000, 3);
        let domains = table.domains();
        let mut rng = StdRng::seed_from_u64(5);
        let preds: Vec<RangePredicate> = (0..40)
            .map(|_| {
                let c = rng.random_range(0..domains.len());
                let (lo, hi) = domains[c];
                let a1 = rng.random_range(lo..=hi);
                let a2 = rng.random_range(lo..=hi);
                RangePredicate::unconstrained(&domains).with_range(c, a1.min(a2), a1.max(a2))
            })
            .collect();
        let a = Annotator::new();
        let batch = a.count_batch(&table, &preds);
        for (p, &b) in preds.iter().zip(&batch) {
            assert_eq!(a.count(&table, p), b);
        }
        // The single-thread path gives the same answers.
        let st = Annotator::with_threads(1).count_batch(&table, &preds);
        assert_eq!(batch, st);
    }

    #[test]
    fn equality_predicate_on_categorical() {
        let table = generate(DatasetKind::Poker, 5_000, 4);
        let a = Annotator::new();
        let domains = table.domains();
        let p = RangePredicate::unconstrained(&domains).with_eq(0, 2.0);
        let count = a.count(&table, &p);
        // Suits are uniform over 4 values.
        assert!((count as f64 - 1250.0).abs() < 150.0, "count {count}");
    }
}
