//! Conjunctive range predicates.

use warper_storage::Table;

/// A conjunction of per-column range checks `lᵢ ≤ Colᵢ ≤ uᵢ` (paper §2).
///
/// One entry per table column. Unconstrained columns carry the full column
/// domain, equality predicates have `low == high`, and one-sided ranges pin
/// the other bound to the domain edge — exactly the paper's encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct RangePredicate {
    /// Lower bounds, one per column.
    pub lows: Vec<f64>,
    /// Upper bounds, one per column.
    pub highs: Vec<f64>,
}

impl RangePredicate {
    /// A predicate that matches every row: each column spans its domain.
    pub fn unconstrained(domains: &[(f64, f64)]) -> Self {
        Self {
            lows: domains.iter().map(|d| d.0).collect(),
            highs: domains.iter().map(|d| d.1).collect(),
        }
    }

    /// Builds a predicate from explicit bounds.
    ///
    /// # Panics
    /// Panics if the two vectors differ in length.
    pub fn new(lows: Vec<f64>, highs: Vec<f64>) -> Self {
        assert_eq!(lows.len(), highs.len(), "bound length mismatch");
        Self { lows, highs }
    }

    /// Number of columns covered.
    pub fn dim(&self) -> usize {
        self.lows.len()
    }

    /// Constrains column `col` to `[low, high]` (builder style).
    pub fn with_range(mut self, col: usize, low: f64, high: f64) -> Self {
        self.lows[col] = low;
        self.highs[col] = high;
        self
    }

    /// Constrains column `col` to equality with `v`.
    pub fn with_eq(self, col: usize, v: f64) -> Self {
        self.with_range(col, v, v)
    }

    /// Indices of columns whose range is narrower than `domains` — i.e. the
    /// columns actually mentioned in the WHERE clause.
    pub fn constrained_columns(&self, domains: &[(f64, f64)]) -> Vec<usize> {
        (0..self.dim())
            .filter(|&i| self.lows[i] > domains[i].0 || self.highs[i] < domains[i].1)
            .collect()
    }

    /// True if row `row` of `table` satisfies every range.
    pub fn matches_row(&self, table: &Table, row: usize) -> bool {
        debug_assert_eq!(self.dim(), table.num_cols());
        (0..self.dim()).all(|c| {
            let v = table.value(row, c);
            v >= self.lows[c] && v <= self.highs[c]
        })
    }

    /// True if every range of `self` contains the corresponding range of
    /// `other` — so `self` matches a superset of `other`'s rows.
    pub fn contains(&self, other: &RangePredicate) -> bool {
        self.dim() == other.dim()
            && (0..self.dim())
                .all(|i| self.lows[i] <= other.lows[i] && self.highs[i] >= other.highs[i])
    }

    /// True if some column's range is empty (`low > high`): matches nothing.
    pub fn is_empty_range(&self) -> bool {
        (0..self.dim()).any(|i| self.lows[i] > self.highs[i])
    }

    /// Projects the predicate onto the sparse form real workloads use: keep
    /// the `max_cols` most selective (narrowest, relative to `domains`)
    /// column ranges and reset every other column to its full domain.
    ///
    /// Generative models emit dense vectors that softly constrain *every*
    /// column; a conjunction over all columns has near-zero cardinality, so
    /// synthetic queries must be canonicalized back to the 1–3-column form
    /// the live workload actually contains before annotation and training.
    pub fn keep_most_selective(&self, domains: &[(f64, f64)], max_cols: usize) -> RangePredicate {
        assert_eq!(domains.len(), self.dim());
        let mut widths: Vec<(usize, f64)> = (0..self.dim())
            .map(|c| {
                let (lo, hi) = domains[c];
                let dw = (hi - lo).max(1e-300);
                (c, ((self.highs[c] - self.lows[c]) / dw).clamp(0.0, 1.0))
            })
            .collect();
        widths.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut out = RangePredicate::unconstrained(domains);
        for &(c, width) in widths.iter().take(max_cols) {
            // A near-full-domain range carries no signal; leave it reset.
            if width < 0.95 {
                out.lows[c] = self.lows[c].max(domains[c].0);
                out.highs[c] = self.highs[c].min(domains[c].1);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warper_storage::{Column, ColumnType, Table};

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("a", ColumnType::Real, vec![1.0, 2.0, 3.0, 4.0]),
                Column::new("b", ColumnType::Real, vec![10.0, 20.0, 30.0, 40.0]),
            ],
        )
    }

    #[test]
    fn unconstrained_matches_all() {
        let t = table();
        let p = RangePredicate::unconstrained(&t.domains());
        assert!((0..4).all(|r| p.matches_row(&t, r)));
        assert!(p.constrained_columns(&t.domains()).is_empty());
    }

    #[test]
    fn range_and_equality() {
        let t = table();
        let p = RangePredicate::unconstrained(&t.domains()).with_range(0, 2.0, 3.0);
        let matches: Vec<bool> = (0..4).map(|r| p.matches_row(&t, r)).collect();
        assert_eq!(matches, vec![false, true, true, false]);
        assert_eq!(p.constrained_columns(&t.domains()), vec![0]);

        let q = RangePredicate::unconstrained(&t.domains()).with_eq(1, 30.0);
        let matches: Vec<bool> = (0..4).map(|r| q.matches_row(&t, r)).collect();
        assert_eq!(matches, vec![false, false, true, false]);
    }

    #[test]
    fn containment() {
        let t = table();
        let wide = RangePredicate::unconstrained(&t.domains()).with_range(0, 1.0, 4.0);
        let narrow = RangePredicate::unconstrained(&t.domains()).with_range(0, 2.0, 3.0);
        assert!(wide.contains(&narrow));
        assert!(!narrow.contains(&wide));
        assert!(wide.contains(&wide));
    }

    #[test]
    fn keep_most_selective_sparsifies() {
        let domains = vec![(0.0, 10.0), (0.0, 10.0), (0.0, 10.0)];
        // Dense predicate softly constraining everything.
        let p = RangePredicate::new(vec![1.0, 4.0, 0.3], vec![9.5, 6.0, 9.9]);
        let sparse = p.keep_most_selective(&domains, 1);
        // Column 1 (width 0.2) survives; others reset to full domain.
        assert_eq!(sparse.lows, vec![0.0, 4.0, 0.0]);
        assert_eq!(sparse.highs, vec![10.0, 6.0, 10.0]);
        // Near-full ranges are dropped even within the budget.
        let wide = RangePredicate::new(vec![0.1, 0.0, 0.0], vec![9.9, 10.0, 10.0]);
        let s2 = wide.keep_most_selective(&domains, 3);
        assert_eq!(s2, RangePredicate::unconstrained(&domains));
    }

    #[test]
    fn empty_range_detected() {
        let t = table();
        let p = RangePredicate::unconstrained(&t.domains()).with_range(0, 5.0, 2.0);
        assert!(p.is_empty_range());
        assert!((0..4).all(|r| !p.matches_row(&t, r)));
    }
}
