//! Fault injection and graceful degradation for the annotation path.
//!
//! In production the annotator is a DBMS round-trip (paper §3.5), and DBMS
//! round-trips fail: queries time out, connections drop, replicas return
//! stale counts. The adaptation loop must degrade — skip a label, fall back
//! to sampling, shrink the batch — rather than panic or block. This module
//! provides the pieces:
//!
//! * [`CountService`] — the fallible counting contract, implemented by the
//!   exact [`Annotator`] and the approximate [`SamplingAnnotator`];
//! * [`FaultInjector`] — a deterministic wrapper injecting failures,
//!   simulated timeouts, and label noise (for tests and chaos runs);
//! * [`ResilientAnnotator`] — the degradation ladder: try exact → retry once
//!   → fall back to sampling → skip, all under a per-invocation row budget
//!   (the deadline proxy; rows scanned is what annotation latency is made
//!   of, `c_gt` in §4.3).

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use warper_storage::Table;

use crate::annotator::Annotator;
use crate::predicate::RangePredicate;
use crate::sampling_annotator::SamplingAnnotator;

/// An annotation request that did not produce a usable label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotateError {
    /// The backing count service failed outright.
    Failed {
        /// `true` when the failure was injected by a [`FaultInjector`].
        injected: bool,
    },
    /// The scan exceeded its row budget (simulated query timeout).
    Timeout {
        /// The budget that was exceeded.
        budget_rows: usize,
        /// Rows the scan would have needed.
        needed_rows: usize,
    },
}

impl std::fmt::Display for AnnotateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnotateError::Failed { injected: true } => write!(f, "annotation failed (injected)"),
            AnnotateError::Failed { injected: false } => write!(f, "annotation failed"),
            AnnotateError::Timeout {
                budget_rows,
                needed_rows,
            } => write!(
                f,
                "annotation timed out: needed {needed_rows} rows, budget {budget_rows}"
            ),
        }
    }
}

impl std::error::Error for AnnotateError {}

/// One answered count request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountAnswer {
    /// The cardinality (exact or estimated).
    pub card: f64,
    /// Rows scanned to produce it — the latency/cost proxy.
    pub rows_scanned: usize,
    /// `true` when the answer is approximate (sampled or noise-injected).
    pub approximate: bool,
}

/// A fallible counting backend — the DBMS stand-in the adaptation loop
/// annotates through.
pub trait CountService: Send {
    /// Answers one `COUNT(*)` request, or reports why it could not.
    fn count(&mut self, table: &Table, pred: &RangePredicate)
        -> Result<CountAnswer, AnnotateError>;

    /// `true` when [`CountService::count_many`] shares work across the
    /// batch (so callers should prefer it over per-query calls). Fault
    /// injectors deliberately stay per-query to keep their RNG streams
    /// aligned with the sequential ladder.
    fn batch_capable(&self) -> bool {
        false
    }

    /// Answers a batch of requests. The default loops over
    /// [`CountService::count`]; batch-capable backends override it with a
    /// shared scan.
    fn count_many(
        &mut self,
        table: &Table,
        preds: &[RangePredicate],
    ) -> Vec<Result<CountAnswer, AnnotateError>> {
        preds.iter().map(|p| self.count(table, p)).collect()
    }
}

impl CountService for Annotator {
    fn count(
        &mut self,
        table: &Table,
        pred: &RangePredicate,
    ) -> Result<CountAnswer, AnnotateError> {
        let o = Annotator::count_with_cost(self, table, pred);
        Ok(CountAnswer {
            card: o.count as f64,
            rows_scanned: o.rows_scanned,
            approximate: false,
        })
    }

    fn batch_capable(&self) -> bool {
        true
    }

    fn count_many(
        &mut self,
        table: &Table,
        preds: &[RangePredicate],
    ) -> Vec<Result<CountAnswer, AnnotateError>> {
        Annotator::count_batch_with_cost(self, table, preds)
            .into_iter()
            .map(|o| {
                Ok(CountAnswer {
                    card: o.count as f64,
                    rows_scanned: o.rows_scanned,
                    approximate: false,
                })
            })
            .collect()
    }
}

impl CountService for SamplingAnnotator {
    fn count(
        &mut self,
        table: &Table,
        pred: &RangePredicate,
    ) -> Result<CountAnswer, AnnotateError> {
        let r = SamplingAnnotator::count(self, table, pred);
        Ok(CountAnswer {
            card: r.estimate,
            rows_scanned: r.rows_scanned,
            approximate: !r.exact_fallback,
        })
    }
}

/// What a [`FaultInjector`] injects. All faults are deterministic given the
/// seed, so chaos tests reproduce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that a request fails outright.
    pub failure_rate: f64,
    /// Simulated per-query timeout: a scan needing more rows than this
    /// errors instead of answering. `None` disables.
    pub timeout_rows: Option<usize>,
    /// Multiplicative label noise: answers are scaled by a uniform factor in
    /// `[1 − noise, 1 + noise]`. `0` disables.
    pub label_noise: f64,
    /// Simulated hang: every request sleeps this long before answering (a
    /// stuck replica or saturated DBMS). `None` disables.
    pub stall: Option<Duration>,
    /// Seed for the injection RNG.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            failure_rate: 0.0,
            timeout_rows: None,
            label_noise: 0.0,
            stall: None,
            seed: 0,
        }
    }
}

/// Wraps a [`CountService`], injecting the faults described by a
/// [`FaultConfig`].
pub struct FaultInjector {
    inner: Box<dyn CountService>,
    cfg: FaultConfig,
    rng: StdRng,
}

impl FaultInjector {
    /// Wraps `inner` with the given fault profile.
    pub fn new(inner: Box<dyn CountService>, cfg: FaultConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self { inner, cfg, rng }
    }
}

impl CountService for FaultInjector {
    fn count(
        &mut self,
        table: &Table,
        pred: &RangePredicate,
    ) -> Result<CountAnswer, AnnotateError> {
        if let Some(stall) = self.cfg.stall {
            std::thread::sleep(stall);
        }
        if self.cfg.failure_rate > 0.0 && self.rng.random_range(0.0..1.0) < self.cfg.failure_rate {
            return Err(AnnotateError::Failed { injected: true });
        }
        let mut ans = self.inner.count(table, pred)?;
        if let Some(budget) = self.cfg.timeout_rows {
            if ans.rows_scanned > budget {
                return Err(AnnotateError::Timeout {
                    budget_rows: budget,
                    needed_rows: ans.rows_scanned,
                });
            }
        }
        if self.cfg.label_noise > 0.0 {
            let eps = self
                .rng
                .random_range(-self.cfg.label_noise..=self.cfg.label_noise);
            ans.card = (ans.card * (1.0 + eps)).max(0.0);
            ans.approximate = true;
        }
        Ok(ans)
    }
}

/// Degraded-mode counters for one run, aggregated across invocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradedStats {
    /// Queries that got no label at all (requeued by the caller).
    pub skipped: usize,
    /// Primary-path retries after a first failure.
    pub retried: usize,
    /// Queries answered by the sampling fallback.
    pub fallback: usize,
    /// Queries skipped because the per-invocation row budget ran out.
    pub deadline_skips: usize,
    /// Queries routed around the primary service because the invocation's
    /// wall-clock deadline had already expired (a hung primary call).
    pub deadline_trips: usize,
}

impl DegradedStats {
    /// Merges another invocation's counters into this one.
    pub fn merge(&mut self, other: &DegradedStats) {
        self.skipped += other.skipped;
        self.retried += other.retried;
        self.fallback += other.fallback;
        self.deadline_skips += other.deadline_skips;
        self.deadline_trips += other.deadline_trips;
    }

    /// `true` when any degraded-mode event occurred.
    pub fn any(&self) -> bool {
        self.skipped + self.retried + self.fallback + self.deadline_skips + self.deadline_trips > 0
    }
}

/// The degradation ladder around a primary (exact) count service:
///
/// 1. try the primary service;
/// 2. on failure, retry it once (transient faults are the common case);
/// 3. on a second failure, fall back to the sampling service if configured
///    (cheaper, so it also dodges simulated timeouts);
/// 4. otherwise skip the query — the caller keeps it unlabeled and requeues
///    it at the next invocation.
///
/// A per-invocation row budget acts as the deadline: once the invocation has
/// spent its rows, the rest of the batch is skipped (batch shrinking) rather
/// than blocking the control loop.
///
/// A wall-clock deadline complements the row budget: rows model the *cost*
/// of scans the annotator performed, but a hung primary (stuck replica,
/// saturated DBMS) burns time without scanning anything. Once the deadline
/// elapses, the remaining queries bypass the primary entirely and go
/// straight to the sampling rung (cheap and local, so it cannot hang the
/// same way); each bypass is counted as a `deadline_trip`. The check is
/// cooperative — it runs between calls, so the call that overran is kept,
/// and everything after it is rerouted.
pub struct ResilientAnnotator {
    primary: Box<dyn CountService>,
    fallback: Option<Box<dyn CountService>>,
    budget_rows: Option<usize>,
    spent_rows: usize,
    deadline: Option<Duration>,
    invocation_start: Instant,
    stats: DegradedStats,
}

impl ResilientAnnotator {
    /// A ladder with only the primary rung.
    pub fn new(primary: Box<dyn CountService>) -> Self {
        Self {
            primary,
            fallback: None,
            budget_rows: None,
            spent_rows: 0,
            deadline: None,
            invocation_start: Instant::now(),
            stats: DegradedStats::default(),
        }
    }

    /// Adds a (typically sampling-based) fallback service.
    pub fn with_fallback(mut self, fallback: Box<dyn CountService>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Caps the rows one invocation may scan before skipping the remainder.
    pub fn with_budget_rows(mut self, rows: usize) -> Self {
        self.budget_rows = Some(rows);
        self
    }

    /// Caps the wall-clock time one invocation may spend in the primary
    /// service; past it, remaining queries go straight to the sampling rung.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Resets the per-invocation budget and deadline clock. Call at the
    /// start of each controller invocation.
    pub fn begin_invocation(&mut self) {
        self.spent_rows = 0;
        self.invocation_start = Instant::now();
    }

    /// Cumulative degraded-mode counters across all invocations so far.
    pub fn stats(&self) -> DegradedStats {
        self.stats
    }

    fn budget_left(&self) -> bool {
        self.budget_rows.is_none_or(|b| self.spent_rows < b)
    }

    fn deadline_expired(&self) -> bool {
        self.deadline
            .is_some_and(|d| self.invocation_start.elapsed() >= d)
    }

    /// Annotates one batch; `None` entries carry no label (failed or
    /// skipped) and should stay unlabeled in the caller's pool.
    ///
    /// When the primary service is batch-capable (the exact annotator's
    /// shared, zone-map-pruned engine), the whole batch is answered in one
    /// sweep and the per-invocation budget is charged per query from the
    /// engine's actual evaluation costs — zone-map skips consume no budget,
    /// so a pruned batch yields strictly more labels per invocation.
    pub fn annotate_batch(&mut self, table: &Table, preds: &[RangePredicate]) -> Vec<Option<f64>> {
        if self.primary.batch_capable() && !self.deadline_expired() {
            let answers = self.primary.count_many(table, preds);
            return answers
                .into_iter()
                .zip(preds)
                .map(|(r, p)| match r {
                    Ok(ans) => {
                        if !self.budget_left() {
                            self.stats.deadline_skips += 1;
                            None
                        } else {
                            self.spent_rows += ans.rows_scanned;
                            Some(ans.card)
                        }
                    }
                    Err(_) => {
                        self.stats.retried += 1;
                        self.descend_ladder(table, p)
                    }
                })
                .collect();
        }
        preds.iter().map(|p| self.annotate_one(table, p)).collect()
    }

    fn annotate_one(&mut self, table: &Table, pred: &RangePredicate) -> Option<f64> {
        if !self.budget_left() {
            self.stats.deadline_skips += 1;
            return None;
        }
        if self.deadline_expired() {
            self.stats.deadline_trips += 1;
            return self.fallback_rung(table, pred);
        }
        match self.primary.count(table, pred) {
            Ok(ans) => {
                self.spent_rows += ans.rows_scanned;
                return Some(ans.card);
            }
            Err(_) => {
                self.stats.retried += 1;
            }
        }
        self.descend_ladder(table, pred)
    }

    /// Rungs below the first failure: one retry, then the sampling
    /// fallback, then skip-and-requeue. A retry against an already-overdue
    /// primary is pointless (the primary is what burned the clock), so an
    /// expired deadline jumps straight to the sampling rung.
    fn descend_ladder(&mut self, table: &Table, pred: &RangePredicate) -> Option<f64> {
        if self.deadline_expired() {
            self.stats.deadline_trips += 1;
            return self.fallback_rung(table, pred);
        }
        if let Ok(ans) = self.primary.count(table, pred) {
            self.spent_rows += ans.rows_scanned;
            return Some(ans.card);
        }
        self.fallback_rung(table, pred)
    }

    /// The bottom rungs: sampling fallback if configured, else
    /// skip-and-requeue.
    fn fallback_rung(&mut self, table: &Table, pred: &RangePredicate) -> Option<f64> {
        if let Some(fallback) = &mut self.fallback {
            if let Ok(ans) = fallback.count(table, pred) {
                self.spent_rows += ans.rows_scanned;
                self.stats.fallback += 1;
                return Some(ans.card);
            }
        }
        self.stats.skipped += 1;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use warper_storage::{generate, DatasetKind};

    fn table_and_preds(n_preds: usize) -> (Table, Vec<RangePredicate>) {
        let table = generate(DatasetKind::Prsa, 5_000, 7);
        let domains = table.domains();
        let mut rng = StdRng::seed_from_u64(3);
        let preds = (0..n_preds)
            .map(|_| {
                let c = rng.random_range(0..domains.len());
                let (lo, hi) = domains[c];
                let a = rng.random_range(lo..=hi);
                let b = rng.random_range(lo..=hi);
                RangePredicate::unconstrained(&domains).with_range(c, a.min(b), a.max(b))
            })
            .collect();
        (table, preds)
    }

    #[test]
    fn fault_free_ladder_matches_exact_annotator() {
        let (table, preds) = table_and_preds(20);
        let exact = Annotator::new();
        let mut ladder = ResilientAnnotator::new(Box::new(Annotator::new()));
        ladder.begin_invocation();
        let labels = ladder.annotate_batch(&table, &preds);
        for (p, l) in preds.iter().zip(&labels) {
            assert_eq!(l.unwrap(), exact.count(&table, p) as f64);
        }
        assert!(!ladder.stats().any());
    }

    #[test]
    fn injected_failures_are_deterministic_and_skipped() {
        let (table, preds) = table_and_preds(200);
        let run = |seed: u64| {
            let injector = FaultInjector::new(
                Box::new(Annotator::new()),
                FaultConfig {
                    failure_rate: 0.5,
                    seed,
                    ..Default::default()
                },
            );
            let mut ladder = ResilientAnnotator::new(Box::new(injector));
            ladder.begin_invocation();
            (ladder.annotate_batch(&table, &preds), ladder.stats())
        };
        let (labels_a, stats_a) = run(9);
        let (labels_b, stats_b) = run(9);
        assert_eq!(labels_a, labels_b);
        assert_eq!(stats_a, stats_b);
        // At 50% failure and one retry, some queries fail twice → skipped.
        assert!(stats_a.skipped > 0, "stats {stats_a:?}");
        assert!(stats_a.retried > stats_a.skipped);
        let labeled = labels_a.iter().flatten().count();
        assert!(labeled > 0 && labeled < preds.len());
    }

    /// Mid-domain ranges on a continuous column: every zone-map block of a
    /// shuffled table straddles the range, so each query costs exactly one
    /// full column scan (`num_rows` evaluated rows) — the worst case the
    /// timeout and budget tests need to be deterministic about.
    fn full_scan_preds(table: &Table, n: usize) -> Vec<RangePredicate> {
        let domains = table.domains();
        let (lo, hi) = domains[3];
        let w = hi - lo;
        (0..n)
            .map(|i| {
                let f = 0.01 * i as f64;
                RangePredicate::unconstrained(&domains).with_range(
                    3,
                    lo + (0.25 + f) * w,
                    lo + (0.60 + f) * w,
                )
            })
            .collect()
    }

    #[test]
    fn timeout_escalates_to_sampling_fallback() {
        let (table, _) = table_and_preds(0);
        let preds = full_scan_preds(&table, 10);
        // Each exact count evaluates 5 000 rows; a 4 000-row timeout forces
        // every query through the ladder to the sampling fallback.
        let injector = FaultInjector::new(
            Box::new(Annotator::new()),
            FaultConfig {
                timeout_rows: Some(4_000),
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let sampler = SamplingAnnotator::build(&table, 250, 2, &mut rng);
        let mut ladder =
            ResilientAnnotator::new(Box::new(injector)).with_fallback(Box::new(sampler));
        ladder.begin_invocation();
        let labels = ladder.annotate_batch(&table, &preds);
        let stats = ladder.stats();
        // The wide mid-domain ranges answer comfortably from the 250-row
        // sample, so every label comes from the fallback rung.
        assert_eq!(stats.fallback, preds.len(), "stats {stats:?}");
        assert_eq!(labels.iter().flatten().count(), stats.fallback);
    }

    #[test]
    fn row_budget_shrinks_the_batch() {
        let (table, _) = table_and_preds(0);
        let preds = full_scan_preds(&table, 10);
        // Budget covers two full scans (and change); the rest must be
        // deadline-skipped.
        let mut ladder =
            ResilientAnnotator::new(Box::new(Annotator::new())).with_budget_rows(11_000);
        ladder.begin_invocation();
        let labels = ladder.annotate_batch(&table, &preds);
        assert_eq!(labels.iter().flatten().count(), 3);
        assert_eq!(ladder.stats().deadline_skips, 7);
        // A fresh invocation gets a fresh budget.
        ladder.begin_invocation();
        let labels = ladder.annotate_batch(&table, &preds[..2]);
        assert_eq!(labels.iter().flatten().count(), 2);
    }

    #[test]
    fn zone_map_pruning_buys_more_labels_per_budget() {
        use warper_storage::drift::sort_and_truncate_half;
        // Sorting by column 3 arms the binary-search fast path: the same
        // budget that covered 3 full scans now labels the entire batch.
        let (mut table, _) = table_and_preds(0);
        sort_and_truncate_half(&mut table, 3);
        assert!(table.zone_index().column_sorted(3));
        let preds = full_scan_preds(&table, 10);
        let mut ladder =
            ResilientAnnotator::new(Box::new(Annotator::new())).with_budget_rows(11_000);
        ladder.begin_invocation();
        let labels = ladder.annotate_batch(&table, &preds);
        assert_eq!(labels.iter().flatten().count(), preds.len());
        assert!(!ladder.stats().any(), "stats {:?}", ladder.stats());
        // Labels are still exact.
        let exact = Annotator::new();
        for (p, l) in preds.iter().zip(&labels) {
            assert_eq!(l, &Some(exact.count(&table, p) as f64));
        }
    }

    #[test]
    fn fully_pruned_queries_consume_no_budget() {
        let (table, _) = table_and_preds(0);
        let domains = table.domains();
        let (_, hi) = domains[3];
        // Out-of-domain ranges: constrained, but every block's zone map is
        // disjoint — zero rows evaluated, zero budget charged.
        let mut preds: Vec<RangePredicate> = (0..8)
            .map(|i| {
                RangePredicate::unconstrained(&domains).with_range(
                    3,
                    hi + 1.0 + i as f64,
                    hi + 1.5 + i as f64,
                )
            })
            .collect();
        // One genuine full scan at the end still fits the budget because
        // the pruned queries before it were free.
        preds.extend(full_scan_preds(&table, 1));
        let mut ladder =
            ResilientAnnotator::new(Box::new(Annotator::new())).with_budget_rows(5_500);
        ladder.begin_invocation();
        let labels = ladder.annotate_batch(&table, &preds);
        assert_eq!(labels.iter().flatten().count(), preds.len());
        assert_eq!(ladder.stats().deadline_skips, 0);
        for l in labels[..8].iter() {
            assert_eq!(l, &Some(0.0));
        }
    }

    #[test]
    fn hung_primary_trips_deadline_onto_sampling_rung() {
        let (table, preds) = table_and_preds(6);
        // Each primary call hangs 5 ms; the invocation deadline is 1 ms. The
        // first query's stall is kept (the check is cooperative), and every
        // query after it must bypass the hung primary for the sampler.
        let hung = FaultInjector::new(
            Box::new(Annotator::new()),
            FaultConfig {
                stall: Some(Duration::from_millis(5)),
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(2);
        let sampler = SamplingAnnotator::build(&table, 500, 2, &mut rng);
        let mut ladder = ResilientAnnotator::new(Box::new(hung))
            .with_fallback(Box::new(sampler))
            .with_deadline(Duration::from_millis(1));
        ladder.begin_invocation();
        let labels = ladder.annotate_batch(&table, &preds);
        let stats = ladder.stats();
        assert_eq!(stats.deadline_trips, preds.len() - 1, "stats {stats:?}");
        assert_eq!(stats.fallback + stats.skipped, preds.len() - 1);
        // Every query still resolves one way or the other; none block.
        assert_eq!(labels.len(), preds.len());
        assert!(labels[0].is_some(), "the overrunning call is kept");
        // A fresh invocation resets the clock: the first call runs on the
        // primary again (and overruns again).
        ladder.begin_invocation();
        let labels = ladder.annotate_batch(&table, &preds[..1]);
        assert!(labels[0].is_some());
        assert_eq!(ladder.stats().deadline_trips, preds.len() - 1);
    }

    #[test]
    fn deadline_without_fallback_skips_and_requeues() {
        let (table, preds) = table_and_preds(4);
        let hung = FaultInjector::new(
            Box::new(Annotator::new()),
            FaultConfig {
                stall: Some(Duration::from_millis(5)),
                ..Default::default()
            },
        );
        let mut ladder =
            ResilientAnnotator::new(Box::new(hung)).with_deadline(Duration::from_millis(1));
        ladder.begin_invocation();
        let labels = ladder.annotate_batch(&table, &preds);
        let stats = ladder.stats();
        assert_eq!(stats.deadline_trips, preds.len() - 1);
        assert_eq!(stats.skipped, preds.len() - 1, "stats {stats:?}");
        assert_eq!(labels.iter().flatten().count(), 1);
    }

    #[test]
    fn expired_deadline_bypasses_the_batch_engine_too() {
        let (table, preds) = table_and_preds(5);
        let mut rng = StdRng::seed_from_u64(8);
        let sampler = SamplingAnnotator::build(&table, 500, 2, &mut rng);
        // Zero deadline: expired before the first call, so even a
        // batch-capable primary must not be entered.
        let mut ladder = ResilientAnnotator::new(Box::new(Annotator::new()))
            .with_fallback(Box::new(sampler))
            .with_deadline(Duration::ZERO);
        ladder.begin_invocation();
        let labels = ladder.annotate_batch(&table, &preds);
        let stats = ladder.stats();
        assert_eq!(stats.deadline_trips, preds.len(), "stats {stats:?}");
        assert_eq!(stats.fallback + stats.skipped, preds.len());
        assert_eq!(labels.len(), preds.len());
    }

    #[test]
    fn label_noise_stays_close_and_marks_approximate() {
        let (table, preds) = table_and_preds(30);
        let exact = Annotator::new();
        let mut noisy = FaultInjector::new(
            Box::new(Annotator::new()),
            FaultConfig {
                label_noise: 0.1,
                seed: 4,
                ..Default::default()
            },
        );
        for p in &preds {
            let truth = exact.count(&table, p) as f64;
            let ans = noisy.count(&table, p).unwrap();
            assert!(ans.approximate);
            assert!((ans.card - truth).abs() <= 0.1 * truth + 1e-9);
        }
    }
}
