//! Integration tests: full Algorithm-1 invocations for each drift mode
//! (c1–c4) through the real pipeline — synthetic dataset, workload
//! generators, annotator, CE model, Warper controller.

use rand::rngs::StdRng;
use rand::SeedableRng;
use warper_repro::ce::lm::{LmMlp, LmMlpParams};
use warper_repro::prelude::*;
use warper_repro::storage::drift;
use warper_repro::warper::detect::DataTelemetry;

/// Shared tiny setup: PRSA-like table with a w1-trained corpus.
struct Env {
    table: Table,
    featurizer: Featurizer,
    annotator: Annotator,
    train: Vec<(Vec<f64>, f64)>,
    baseline: f64,
}

impl Env {
    fn new(seed: u64) -> (Env, LmMlp) {
        let table = generate(DatasetKind::Prsa, 4_000, seed);
        let featurizer = Featurizer::from_table(&table);
        let annotator = Annotator::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = QueryGenerator::from_notation(&table, "w1");
        let preds = gen.generate_many(400, &mut rng);
        let cards = annotator.count_batch(&table, &preds);
        let train: Vec<(Vec<f64>, f64)> = preds
            .iter()
            .zip(&cards)
            .map(|(p, &c)| (featurizer.featurize(p), c as f64))
            .collect();
        let mut model = LmMlp::new(featurizer.dim(), LmMlpParams::default(), seed);
        let examples: Vec<LabeledExample> = train
            .iter()
            .map(|(f, c)| LabeledExample::new(f.clone(), *c))
            .collect();
        model.fit(&examples);
        let baseline = {
            let ests: Vec<f64> = train.iter().map(|(f, _)| model.estimate(f)).collect();
            let actuals: Vec<f64> = train.iter().map(|(_, c)| *c).collect();
            gmq(&ests, &actuals, PAPER_THETA)
        };
        (
            Env {
                table,
                featurizer,
                annotator,
                train,
                baseline,
            },
            model,
        )
    }

    fn controller(&self, seed: u64, gamma: usize) -> WarperController {
        let f = self.featurizer.clone();
        WarperController::new(
            self.featurizer.dim(),
            &self.train,
            self.baseline,
            WarperConfig {
                gamma,
                n_p: 200,
                n_i: 15,
                pretrain_epochs: 5,
                ..Default::default()
            },
            seed,
        )
        .with_canonicalizer(Box::new(move |q: &[f64]| {
            f.featurize(&f.defeaturize(q).keep_most_selective(f.domains(), 3))
        }))
    }

    fn arrivals(&self, workload: &str, n: usize, labeled: bool, seed: u64) -> Vec<ArrivedQuery> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = QueryGenerator::from_notation(&self.table, workload);
        gen.generate_many(n, &mut rng)
            .iter()
            .map(|p| ArrivedQuery {
                features: self.featurizer.featurize(p),
                gt: labeled.then(|| self.annotator.count(&self.table, p) as f64),
            })
            .collect()
    }

    fn invoke(
        &self,
        ctl: &mut WarperController,
        model: &mut LmMlp,
        arrived: &[ArrivedQuery],
        telemetry: &DataTelemetry,
    ) -> warper_repro::warper::controller::InvocationReport {
        let table = &self.table;
        let f = &self.featurizer;
        let a = &self.annotator;
        ctl.invoke(model, arrived, telemetry, &mut |qs| {
            qs.iter()
                .map(|q| Some(a.count(table, &f.defeaturize(q)) as f64))
                .collect()
        })
    }
}

#[test]
fn c2_workload_drift_generates_and_improves() {
    let (env, mut model) = Env::new(1);
    let mut ctl = env.controller(5, 150);
    let mut generated = 0;
    let mut first_gap = 0.0;
    let mut last_eval = f64::INFINITY;
    for step in 0..4 {
        let arrived = env.arrivals("w4", 60, true, 100 + step);
        let report = env.invoke(&mut ctl, &mut model, &arrived, &DataTelemetry::default());
        generated += report.generated;
        if step == 0 {
            first_gap = report.delta_m;
        }
        if let Some(g) = report.eval_gmq {
            last_eval = g;
        }
    }
    assert!(generated > 0, "c2 must synthesize queries");
    assert!(
        last_eval < env.baseline + first_gap,
        "no improvement: gap {first_gap}, final GMQ {last_eval}, baseline {}",
        env.baseline
    );
}

#[test]
fn c1_data_drift_reannotates_stale_labels() {
    let (mut env, mut model) = Env::new(2);
    let changelog = drift::ChangeLog::mark(&env.table);
    drift::sort_and_truncate_half(&mut env.table, 1);
    let telemetry = DataTelemetry {
        changed_fraction: changelog.changed_fraction(&env.table),
        canary_max_change: 1.0,
    };
    assert!(telemetry.changed_fraction > 0.05);

    let mut ctl = env.controller(7, 150);
    let arrived = env.arrivals("w1", 20, false, 9);
    let report = env.invoke(&mut ctl, &mut model, &arrived, &telemetry);
    assert!(
        report.mode.c1,
        "telemetry should flag c1, got {}",
        report.mode
    );
    assert!(report.annotated > 0, "c1 must re-annotate");
    assert!(
        report.trained_on > 0,
        "the model must be updated from re-annotations"
    );
}

#[test]
fn c4_adequate_queries_fall_back_to_plain_update() {
    let (env, mut model) = Env::new(3);
    // γ tiny → adequate queries/labels on the very first invocation.
    let mut ctl = env.controller(11, 10);
    let arrived = env.arrivals("w4", 60, true, 200);
    let report = env.invoke(&mut ctl, &mut model, &arrived, &DataTelemetry::default());
    if report.mode.any() {
        assert!(
            report.mode.c4,
            "with n_t ≥ γ and labels, mode must be c4: {}",
            report.mode
        );
        assert_eq!(report.generated, 0, "c4 needs no synthesis");
        assert_eq!(report.annotated, 0, "c4 needs no annotation");
        assert!(report.trained_on > 0);
    }
}

#[test]
fn no_drift_keeps_machinery_idle() {
    let (env, mut model) = Env::new(4);
    let mut ctl = env.controller(13, 150);
    // Same workload as training: no drift.
    let arrived = env.arrivals("w1", 40, true, 17);
    let report = env.invoke(&mut ctl, &mut model, &arrived, &DataTelemetry::default());
    assert!(
        !report.mode.any(),
        "in-distribution workload should not trigger: {}",
        report.mode
    );
    assert_eq!(report.generated, 0);
    assert_eq!(report.annotated, 0);
}

#[test]
fn c3_unlabeled_arrivals_annotated_stratified() {
    let (env, mut model) = Env::new(6);
    let mut ctl = env.controller(19, 150);
    // Seed the eval window with a few labeled drifted queries so δ_m fires;
    // the bulk arrives unlabeled (annotation can't keep up → c3).
    let mut arrived = env.arrivals("w4", 8, true, 23);
    arrived.extend(env.arrivals("w4", 60, false, 24));
    let report = env.invoke(&mut ctl, &mut model, &arrived, &DataTelemetry::default());
    assert!(report.mode.c3, "should detect c3, got {}", report.mode);
    assert!(report.annotated > 0, "c3 must annotate picked queries");
}
