//! Cross-crate property-based tests (proptest) on the invariants the system
//! relies on.

use proptest::prelude::*;
use warper_repro::metrics::{delta_js, gmq, q_error, PAPER_THETA};
use warper_repro::query::{Annotator, Featurizer, RangePredicate};
use warper_repro::storage::{Column, ColumnType, Table};

/// Strategy: a small table plus a pair of nested predicates over it.
fn table_of(values: Vec<Vec<f64>>) -> Table {
    let cols = values
        .into_iter()
        .enumerate()
        .map(|(i, v)| Column::new(format!("c{i}"), ColumnType::Real, v))
        .collect();
    Table::new("t", cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn q_error_is_symmetric_and_at_least_one(
        a in 0.0f64..1e9,
        b in 0.0f64..1e9,
    ) {
        let q1 = q_error(a, b, PAPER_THETA);
        let q2 = q_error(b, a, PAPER_THETA);
        prop_assert!((q1 - q2).abs() < 1e-9);
        prop_assert!(q1 >= 1.0);
    }

    #[test]
    fn gmq_bounded_by_min_max_qerror(
        pairs in prop::collection::vec((0.0f64..1e6, 0.0f64..1e6), 1..40),
    ) {
        let ests: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let actuals: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let qs: Vec<f64> = pairs.iter().map(|p| q_error(p.0, p.1, PAPER_THETA)).collect();
        let g = gmq(&ests, &actuals, PAPER_THETA);
        let lo = qs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = qs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9);
    }

    #[test]
    fn featurize_defeaturize_roundtrips(
        bounds in prop::collection::vec((0.0f64..0.45, 0.55f64..1.0), 1..8),
    ) {
        // Domains [0,10] per column; predicates inside them.
        let d = bounds.len();
        let domains = vec![(0.0, 10.0); d];
        let f = Featurizer::from_domains(domains);
        let p = RangePredicate::new(
            bounds.iter().map(|b| b.0 * 10.0).collect(),
            bounds.iter().map(|b| b.1 * 10.0).collect(),
        );
        let back = f.defeaturize(&f.featurize(&p));
        for c in 0..d {
            prop_assert!((back.lows[c] - p.lows[c]).abs() < 1e-9);
            prop_assert!((back.highs[c] - p.highs[c]).abs() < 1e-9);
        }
    }

    #[test]
    fn containment_implies_cardinality_monotonicity(
        rows in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 10..120),
        (l1, w1) in (0.0f64..50.0, 5.0f64..50.0),
        shrink in 0.0f64..0.4,
    ) {
        let table = table_of(vec![
            rows.iter().map(|r| r.0).collect(),
            rows.iter().map(|r| r.1).collect(),
        ]);
        let domains = table.domains();
        let wide = RangePredicate::unconstrained(&domains).with_range(0, l1, l1 + w1);
        let narrow = RangePredicate::unconstrained(&domains)
            .with_range(0, l1 + shrink * w1, l1 + w1 - shrink * w1);
        prop_assert!(wide.contains(&narrow));
        let a = Annotator::new();
        prop_assert!(a.count(&table, &wide) >= a.count(&table, &narrow));
    }

    #[test]
    fn annotator_counts_bounded_by_rows(
        rows in prop::collection::vec(0.0f64..100.0, 1..200),
        lo in 0.0f64..100.0,
        width in 0.0f64..100.0,
    ) {
        let n = rows.len() as u64;
        let table = table_of(vec![rows]);
        let p = RangePredicate::new(vec![lo], vec![lo + width]);
        let count = Annotator::new().count(&table, &p);
        prop_assert!(count <= n);
        // Selectivity consistency.
        let sel = Annotator::new().selectivity(&table, &p);
        prop_assert!((sel - count as f64 / n as f64).abs() < 1e-12);
    }

    #[test]
    fn delta_js_symmetric_and_bounded(
        a in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 4), 10..60),
        b in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 4), 10..60),
    ) {
        let d_ab = delta_js(&a, &b, 4, 3);
        let d_ba = delta_js(&b, &a, 4, 3);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
    }

    #[test]
    fn keep_most_selective_is_idempotent_and_contains_nothing_extra(
        lows in prop::collection::vec(0.0f64..0.5, 5),
        widths in prop::collection::vec(0.05f64..0.5, 5),
        keep in 1usize..4,
    ) {
        let domains = vec![(0.0, 1.0); 5];
        let p = RangePredicate::new(
            lows.clone(),
            lows.iter().zip(&widths).map(|(l, w)| (l + w).min(1.0)).collect(),
        );
        let s1 = p.keep_most_selective(&domains, keep);
        let s2 = s1.keep_most_selective(&domains, keep);
        prop_assert_eq!(&s1, &s2, "canonicalization must be idempotent");
        // The sparse form is a relaxation: it contains the original.
        prop_assert!(s1.contains(&p));
        // And constrains at most `keep` columns.
        prop_assert!(s1.constrained_columns(&domains).len() <= keep);
    }
}
