//! Integration tests for the experiment runner and the end-to-end QO path:
//! every strategy and model runs through `run_single_table`; better CE
//! translates into better simulated plans.

use rand::rngs::StdRng;
use rand::SeedableRng;
use warper_repro::prelude::*;
use warper_repro::qo::{Executor, QueryCards, Scenario, SpjTemplate};
use warper_repro::storage::tpch::{generate_tpch, TpchScale};
use warper_repro::workload::ArrivalProcess;

fn tiny_cfg(seed: u64) -> RunnerConfig {
    RunnerConfig {
        n_train: 250,
        n_test: 60,
        checkpoints: 3,
        arrival: ArrivalProcess {
            rate_per_sec: 0.2,
            period_secs: 450.0,
        },
        arrivals_labeled: true,
        seed,
        warper: WarperConfig {
            embed_dim: 8,
            hidden: 32,
            n_i: 8,
            pretrain_epochs: 3,
            gamma: 100,
            n_p: 60,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn every_strategy_completes_a_run() {
    let table = generate(DatasetKind::Prsa, 2_500, 31);
    let setup = DriftSetup::Workload {
        train: "w1".into(),
        new: "w3".into(),
    };
    for strategy in [
        StrategyKind::Ft,
        StrategyKind::Mix,
        StrategyKind::Aug,
        StrategyKind::Hem,
        StrategyKind::Warper,
    ] {
        let res =
            run_single_table(&table, &setup, ModelKind::LmMlp, strategy, &tiny_cfg(31)).unwrap();
        assert_eq!(res.curve.points().len(), 4, "{}", res.strategy);
        assert!(res
            .curve
            .points()
            .iter()
            .all(|(_, g)| g.is_finite() && *g >= 1.0));
        assert!(res.delta_js >= 0.0 && res.delta_js <= 1.0);
    }
}

#[test]
fn every_model_kind_completes_a_run() {
    let table = generate(DatasetKind::Poker, 2_000, 33);
    let setup = DriftSetup::Workload {
        train: "w1".into(),
        new: "w5".into(),
    };
    for model in [
        ModelKind::LmMlp,
        ModelKind::LmGbt,
        ModelKind::LmPly,
        ModelKind::LmRbf,
        ModelKind::Mscn,
    ] {
        let res =
            run_single_table(&table, &setup, model, StrategyKind::Warper, &tiny_cfg(33)).unwrap();
        assert_eq!(res.model, model.name());
        assert!(res.curve.best_gmq().unwrap().is_finite(), "{}", res.model);
    }
}

#[test]
fn combined_drift_runs() {
    let table = generate(DatasetKind::Prsa, 2_500, 35);
    let setup = DriftSetup::Combined {
        train: "w1".into(),
        new: "w2".into(),
        kind: DataDriftKind::Update { frac: 0.5 },
    };
    let mut cfg = tiny_cfg(35);
    cfg.arrivals_labeled = false;
    let res =
        run_single_table(&table, &setup, ModelKind::LmMlp, StrategyKind::Warper, &cfg).unwrap();
    // Combined drift: both data telemetry and the workload change act.
    assert!(
        res.annotated_total > 0,
        "combined drift requires annotation"
    );
}

#[test]
fn better_estimates_give_better_plans() {
    // A model's estimate error and its induced plan latency must co-move:
    // the oracle never loses, and a 100× misestimate costs latency in S1.
    let tables = generate_tpch(TpchScale::tiny(), 41);
    let mut template = SpjTemplate::new(&tables, Scenario::S1BufferSpill, "w1");
    let mut rng = StdRng::seed_from_u64(41);
    let executor = Executor::new(Scenario::S1BufferSpill);
    let queries = template.draw_many(30, &mut rng);
    let mut any_regression = false;
    for q in &queries {
        let oracle = executor.oracle_latency(&q.actual);
        let under = QueryCards {
            left: q.actual.left / 100.0,
            ..q.actual
        };
        let bad = executor.latency(&under, &q.actual);
        assert!(bad >= oracle - 1e-12);
        if q.actual.left > 1_000.0 {
            any_regression |= bad > oracle * 1.05;
        }
    }
    assert!(
        any_regression,
        "large underestimates should cause spills somewhere"
    );
}

#[test]
fn runner_is_deterministic_across_processes() {
    // Replays with the same seed must agree exactly — the basis for every
    // cross-strategy comparison in the benches.
    let table = generate(DatasetKind::Higgs, 2_000, 43);
    let setup = DriftSetup::Workload {
        train: "w2".into(),
        new: "w4".into(),
    };
    let a = run_single_table(
        &table,
        &setup,
        ModelKind::LmMlp,
        StrategyKind::Warper,
        &tiny_cfg(43),
    )
    .unwrap();
    let b = run_single_table(
        &table,
        &setup,
        ModelKind::LmMlp,
        StrategyKind::Warper,
        &tiny_cfg(43),
    )
    .unwrap();
    assert_eq!(a.curve.points(), b.curve.points());
    assert_eq!(a.generated_total, b.generated_total);
    assert_eq!(a.annotated_total, b.annotated_total);
}

#[test]
fn speedup_report_vs_ft_is_computable() {
    let table = generate(DatasetKind::Prsa, 2_500, 47);
    let setup = DriftSetup::Workload {
        train: "w12".into(),
        new: "w345".into(),
    };
    let cfg = tiny_cfg(47);
    let ft = run_single_table(&table, &setup, ModelKind::LmMlp, StrategyKind::Ft, &cfg).unwrap();
    let warper =
        run_single_table(&table, &setup, ModelKind::LmMlp, StrategyKind::Warper, &cfg).unwrap();
    let alpha = ft.curve.initial_gmq().unwrap();
    let beta = ft
        .curve
        .best_gmq()
        .unwrap()
        .min(warper.curve.best_gmq().unwrap());
    let s = relative_speedups(&ft.curve, &warper.curve, alpha, beta);
    for v in [s.d05, s.d08, s.d10] {
        assert!(v.is_finite() && v > 0.0);
    }
}
