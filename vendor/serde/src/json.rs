//! Minimal JSON lexer/parser shared by `Deserialize` impls and derives.

use std::fmt;

/// A JSON parse error with byte position context.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    pos: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for Error {}

/// A cursor over JSON source text.
pub struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `src`.
    pub fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    /// Builds an error annotated with the current position.
    pub fn error(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            pos: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Returns the next non-whitespace byte without consuming it.
    pub fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    /// Consumes the next non-whitespace byte if it equals `c`.
    pub fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes the next non-whitespace byte, requiring it to equal `c`.
    pub fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", c as char)))
        }
    }

    /// Consumes `lit` (e.g. `null`) if it is next; returns whether it was.
    pub fn parse_literal(&mut self, lit: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    /// Consumes a JSON number, returning its raw text.
    pub fn number_str(&mut self) -> Result<&'a str, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.src.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected number"));
        }
        // Safety of from_utf8: the consumed range is all ASCII.
        std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| self.error("invalid utf-8"))
    }

    /// Consumes a JSON string (including quotes), returning its unescaped
    /// contents.
    pub fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.src.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.src.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    self.pos = start + len;
                    let bytes = self
                        .src
                        .get(start..start + len)
                        .ok_or_else(|| self.error("truncated utf-8"))?;
                    let s = std::str::from_utf8(bytes).map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    /// Consumes the opening `{` of an object.
    pub fn begin_object(&mut self) -> Result<(), Error> {
        self.expect(b'{')
    }

    /// Advances to the next key inside an object.
    ///
    /// Returns `Ok(None)` when the closing `}` is reached. `*first` must be
    /// initialised to `true` before the first call and is managed internally.
    pub fn object_key(&mut self, first: &mut bool) -> Result<Option<String>, Error> {
        if self.eat(b'}') {
            return Ok(None);
        }
        if !*first {
            self.expect(b',')?;
        }
        *first = false;
        let key = self.parse_string()?;
        self.expect(b':')?;
        Ok(Some(key))
    }

    /// Consumes the opening `[` of an array.
    pub fn begin_array(&mut self) -> Result<(), Error> {
        self.expect(b'[')
    }

    /// Advances to the next element inside an array.
    ///
    /// Returns `Ok(false)` when the closing `]` is reached; otherwise the
    /// parser is positioned at the next value. `*first` must start `true`.
    pub fn array_next(&mut self, first: &mut bool) -> Result<bool, Error> {
        if self.eat(b']') {
            return Ok(false);
        }
        if !*first {
            self.expect(b',')?;
        }
        *first = false;
        Ok(true)
    }

    /// Skips one complete JSON value of any type.
    pub fn skip_value(&mut self) -> Result<(), Error> {
        match self.peek() {
            Some(b'"') => {
                self.parse_string()?;
            }
            Some(b'{') => {
                self.begin_object()?;
                let mut first = true;
                while self.object_key(&mut first)?.is_some() {
                    self.skip_value()?;
                }
            }
            Some(b'[') => {
                self.begin_array()?;
                let mut first = true;
                while self.array_next(&mut first)? {
                    self.skip_value()?;
                }
            }
            Some(b't') | Some(b'f') => {
                if !self.parse_literal("true") && !self.parse_literal("false") {
                    return Err(self.error("invalid literal"));
                }
            }
            Some(b'n') => {
                if !self.parse_literal("null") {
                    return Err(self.error("invalid literal"));
                }
            }
            Some(_) => {
                self.number_str()?;
            }
            None => return Err(self.error("unexpected end of input")),
        }
        Ok(())
    }

    /// Asserts only whitespace remains.
    pub fn end(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.pos == self.src.len() {
            Ok(())
        } else {
            Err(self.error("trailing characters"))
        }
    }
}

#[inline]
fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_escaped_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
