//! Offline stand-in for `serde`.
//!
//! The real serde separates data model from format; this stand-in collapses
//! both into JSON, which is the only format the workspace uses. `Serialize`
//! writes JSON text into a `String`; `Deserialize` reads from a
//! [`json::Parser`]. The derive macros in `serde_derive` generate
//! externally-tagged encodings matching upstream serde's JSON output
//! (`"Variant"`, `{"Variant":value}`, `{"Variant":[..]}`, `{"Variant":{..}}`).
//!
//! The `'de` lifetime on [`Deserialize`] is unused (nothing here borrows from
//! the input) but kept so `for<'de> Deserialize<'de>` bounds compile.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Serializes `self` as JSON text appended to `out`.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize(&self, out: &mut String);
}

/// Deserializes `Self` from JSON text via a [`json::Parser`].
pub trait Deserialize<'de>: Sized {
    /// Parses one JSON value into `Self`.
    fn deserialize(p: &mut json::Parser<'_>) -> Result<Self, json::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut String) {
        (**self).serialize(out);
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        if p.parse_literal("true") {
            Ok(true)
        } else if p.parse_literal("false") {
            Ok(false)
        } else {
            Err(p.error("expected boolean"))
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
                let text = p.number_str()?;
                text.parse::<$t>().map_err(|_| p.error("invalid number"))
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut String) {
                if self.is_finite() {
                    // Rust's float Display is shortest-roundtrip, so the
                    // persisted text parses back to the identical bits.
                    out.push_str(&self.to_string());
                } else {
                    out.push_str("null");
                }
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
                if p.parse_literal("null") {
                    return Ok(<$t>::NAN);
                }
                let text = p.number_str()?;
                text.parse::<$t>().map_err(|_| p.error("invalid float"))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for str {
    fn serialize(&self, out: &mut String) {
        json::write_escaped_str(out, self);
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut String) {
        json::write_escaped_str(out, self);
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        p.parse_string()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize(out),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        if p.parse_literal("null") {
            Ok(None)
        } else {
            Ok(Some(T::deserialize(p)?))
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut String) {
        self.as_slice().serialize(out);
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        p.begin_array()?;
        let mut out = Vec::new();
        let mut first = true;
        while p.array_next(&mut first)? {
            out.push(T::deserialize(p)?);
        }
        Ok(out)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, out: &mut String) {
        self.as_slice().serialize(out);
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        let v: Vec<T> = Vec::deserialize(p)?;
        v.try_into().map_err(|_| p.error("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    self.$idx.serialize(out);
                )+
                let _ = first;
                out.push(']');
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
                let mut first = true;
                p.begin_array()?;
                let result = ($(
                    {
                        if !p.array_next(&mut first)? {
                            return Err(p.error("tuple too short"));
                        }
                        $name::deserialize(p)?
                    },
                )+);
                if p.array_next(&mut first)? {
                    return Err(p.error("tuple too long"));
                }
                Ok(result)
            }
        }
    )*};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);
