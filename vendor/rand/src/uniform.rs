//! Uniform sampling over ranges.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Converts 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Converts 64 random bits to a uniform `f64` in `[0, 1]`.
#[inline]
fn unit_f64_inclusive(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {}

/// Ranges a `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Note: f32 ranges are intentionally not supported. With both float widths
// implemented, an unsuffixed literal like `rng.random_range(-1.0..1.0)`
// becomes ambiguous (two candidate impls defeat the f64 literal fallback);
// the workspace samples f64 only.
impl SampleUniform for f64 {}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; stay inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = unit_f64_inclusive(rng.next_u64());
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

/// Uniform `u64` below `bound` via unbiased rejection sampling.
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Largest multiple of `bound` that fits in u64; values past it would bias.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % bound;
        }
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(below(rng, span) as $wide) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);
