//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the `rand 0.9` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random_range`]
//! over integer and float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but the workspace only relies on
//! determinism-given-seed and statistical quality, not on a specific stream.

pub mod rngs;
pub mod seq;

mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a uniformly random `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        uniform::unit_f64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}
