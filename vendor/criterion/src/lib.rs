//! Offline stand-in for `criterion`.
//!
//! Implements the builder/bench surface the workspace uses — `Criterion`
//! with `sample_size`/`measurement_time`/`warm_up_time`, `bench_function`,
//! `Bencher::iter`/`iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by plain `std::time::Instant` timing.
//! No statistics, plots, or baseline comparison: each benchmark prints its
//! mean wall-clock time per iteration.

use std::time::{Duration, Instant};

/// How batched inputs are grouped; only affects upstream criterion's memory
/// strategy, so the variants are accepted and ignored here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            measure: self.measurement_time,
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.total.as_secs_f64() / b.iters as f64
        } else {
            0.0
        };
        println!(
            "bench {name:<50} {:>12.3} µs/iter ({} iters)",
            per_iter * 1e6,
            b.iters
        );
        self
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, untimed.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
        }
        let deadline = Instant::now() + self.measure;
        let min_iters = self.samples.max(1) as u64;
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
            if self.iters >= min_iters && Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let deadline = Instant::now() + self.measure;
        let min_iters = self.samples.max(1) as u64;
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
            if self.iters >= min_iters && Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Prevents the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
