//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's panic-free, non-poisoning
//! lock API (`lock()` returns the guard directly). Poisoned std locks are
//! recovered transparently, matching parking_lot's behaviour of not
//! propagating poison.

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose acquire methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}
