//! Offline stand-in for `serde_json`, layered on the vendored `serde`.
//!
//! Provides [`Value`]/[`Map`], the [`json!`] macro (flat objects with literal
//! keys, arrays, and serializable expressions), [`to_string`],
//! [`to_string_pretty`], [`from_str`], and [`to_value`].

use serde::json::Parser;
use serde::{Deserialize, Serialize};

pub use serde::json::Error;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

/// An insertion-ordered string-keyed map of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing and returning any prior value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Serialize for Value {
    fn serialize(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.serialize(out),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => s.serialize(out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.serialize(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    k.serialize(out);
                    out.push(':');
                    v.serialize(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a number the way serde_json does: integral values without a
/// fractional part, everything else via shortest-roundtrip `Display`.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&n.to_string());
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize(p: &mut Parser<'_>) -> Result<Self, Error> {
        match p.peek() {
            Some(b'"') => Ok(Value::String(p.parse_string()?)),
            Some(b'{') => {
                p.begin_object()?;
                let mut map = Map::new();
                let mut first = true;
                while let Some(key) = p.object_key(&mut first)? {
                    let v = Value::deserialize(p)?;
                    map.insert(key, v);
                }
                Ok(Value::Object(map))
            }
            Some(b'[') => {
                p.begin_array()?;
                let mut items = Vec::new();
                let mut first = true;
                while p.array_next(&mut first)? {
                    items.push(Value::deserialize(p)?);
                }
                Ok(Value::Array(items))
            }
            Some(b't') | Some(b'f') => {
                if p.parse_literal("true") {
                    Ok(Value::Bool(true))
                } else if p.parse_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(p.error("invalid literal"))
                }
            }
            Some(b'n') => {
                if p.parse_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(p.error("invalid literal"))
                }
            }
            Some(_) => {
                let text = p.number_str()?;
                text.parse::<f64>()
                    .map(Value::Number)
                    .map_err(|_| p.error("invalid number"))
            }
            None => Err(p.error("unexpected end of input")),
        }
    }
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(&mut out);
    Ok(out)
}

/// Serializes `value` to human-readable, two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value_impl(value)?;
    let mut out = String::new();
    pretty(&v, 0, &mut out);
    Ok(out)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                k.serialize(out);
                out.push_str(": ");
                pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => other.serialize(out),
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: for<'de> Deserialize<'de>>(src: &str) -> Result<T, Error> {
    let mut p = Parser::new(src);
    let value = T::deserialize(&mut p)?;
    p.end()?;
    Ok(value)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    to_value_impl(value).expect("serialization produced invalid JSON")
}

fn to_value_impl<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    let mut text = String::new();
    value.serialize(&mut text);
    let mut p = Parser::new(&text);
    let v = Value::deserialize(&mut p)?;
    p.end()?;
    Ok(v)
}

/// Builds a [`Value`]: `json!(null)`, `json!(expr)`, `json!([..])`, or a flat
/// `json!({"key": expr, ...})` object with literal keys.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::json!($value)); )*
        $crate::Value::Object(map)
    }};
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($value)),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}
