//! Offline stand-in for `serde_derive`.
//!
//! Generates JSON `Serialize`/`Deserialize` impls for the trait definitions
//! in the vendored `serde` crate. Built without `syn`/`quote`: the item is
//! parsed by walking raw token trees and the impl is emitted as source text.
//!
//! Supported shapes (everything the workspace derives on): non-generic
//! structs with named fields, and non-generic enums whose variants are unit,
//! newtype/tuple, or struct-like. Encodings match upstream serde's
//! externally-tagged JSON. The only field attribute understood is
//! `#[serde(default)]` / `#[serde(default = "path")]`: a field missing from
//! the input is filled from `Default::default()` (or `path()`) instead of
//! erroring, which lets snapshot formats grow fields without breaking old
//! files. Any other `#[serde(...)]` field attribute is a hard error — better
//! than silently producing a wrong encoding.

// A proc macro's only error channel is a compile-time panic.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum FieldDefault {
    /// No `#[serde(default)]`: the field must appear in the input.
    Required,
    /// `#[serde(default)]`: a missing field becomes `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]`: a missing field becomes `path()`.
    Path(String),
}

impl FieldDefault {
    /// The expression substituted for a missing field, if any.
    fn missing_expr(&self) -> Option<String> {
        match self {
            FieldDefault::Required => None,
            FieldDefault::Trait => Some("::std::default::Default::default()".to_string()),
            FieldDefault::Path(p) => Some(format!("{p}()")),
        }
    }
}

enum VariantKind {
    Unit,
    /// Parenthesised payload with this many fields (1 = newtype).
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Derives `serde::Serialize` (JSON writer).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Rust")
}

/// Derives `serde::Deserialize` (JSON reader).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Item parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive: generic types are not supported by the offline stub")
            }
            Some(_) => i += 1,
            None => {
                panic!("serde_derive: `{name}` has no braced body (tuple/unit structs unsupported)")
            }
        }
    };

    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Extracts field names from the tokens of a `{ name: Type, ... }` body.
///
/// Types never need parsing: generated code infers them from the struct
/// construction site. Commas inside angle brackets (e.g. `Vec<Vec<f64>>`
/// has none, but `HashMap<K, V>` would) are skipped by depth tracking;
/// commas inside any bracketed group (e.g. `[usize; 2]`) are invisible here
/// because the group is a single token tree.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility, noting `#[serde(default)]`.
        let mut default = FieldDefault::Required;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if let Some(d) = parse_serde_field_attr(g.stream()) {
                            default = d;
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(Field {
            name: id.to_string(),
            default,
        });
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Recognizes a `serde(...)` field attribute's bracket-group contents.
/// Returns `None` for non-serde attributes (doc comments etc.); panics on
/// serde attributes other than `default`, which this stub cannot honor.
fn parse_serde_field_attr(attr: TokenStream) -> Option<FieldDefault> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
        (tokens.first(), tokens.get(1))
    else {
        return None;
    };
    if id.to_string() != "serde" || args.delimiter() != Delimiter::Parenthesis {
        return None;
    }
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => match inner.get(2) {
            Some(TokenTree::Literal(lit)) => {
                let path = lit.to_string().trim_matches('"').to_string();
                Some(FieldDefault::Path(path))
            }
            _ => Some(FieldDefault::Trait),
        },
        other => panic!("serde_derive: unsupported serde field attribute {other:?}"),
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip variant attributes.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Consume the trailing comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

/// Counts fields in a tuple-variant payload by top-level commas.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for tok in body {
        saw_any = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    let name = match item {
        Item::Struct { name, fields } => {
            body.push_str("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                let f = &f.name;
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::serialize(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');\n");
            name
        }
        Item::Enum { name, variants } => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        body.push_str(&format!("Self::{vn} => out.push_str(\"\\\"{vn}\\\"\"),\n"));
                    }
                    VariantKind::Tuple(1) => {
                        body.push_str(&format!(
                            "Self::{vn}(__f0) => {{\n\
                             out.push_str(\"{{\\\"{vn}\\\":\");\n\
                             ::serde::Serialize::serialize(__f0, out);\n\
                             out.push('}}');\n\
                             }}\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        body.push_str(&format!(
                            "Self::{vn}({}) => {{\n\
                             out.push_str(\"{{\\\"{vn}\\\":[\");\n",
                            binders.join(", ")
                        ));
                        for (k, b) in binders.iter().enumerate() {
                            if k > 0 {
                                body.push_str("out.push(',');\n");
                            }
                            body.push_str(&format!("::serde::Serialize::serialize({b}, out);\n"));
                        }
                        body.push_str("out.push_str(\"]}\");\n}\n");
                    }
                    VariantKind::Struct(fields) => {
                        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        body.push_str(&format!(
                            "Self::{vn} {{ {} }} => {{\n\
                             out.push_str(\"{{\\\"{vn}\\\":{{\");\n",
                            names.join(", ")
                        ));
                        for (k, f) in names.iter().enumerate() {
                            if k > 0 {
                                body.push_str("out.push(',');\n");
                            }
                            body.push_str(&format!(
                                "out.push_str(\"\\\"{f}\\\":\");\n\
                                 ::serde::Serialize::serialize({f}, out);\n"
                            ));
                        }
                        body.push_str("out.push_str(\"}}\");\n}\n");
                    }
                }
            }
            body.push_str("}\n");
            name
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self, out: &mut ::std::string::String) {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let mut body = String::new();
    let name = match item {
        Item::Struct { name, fields } => {
            body.push_str(&gen_named_fields_reader("Self", fields, true));
            name
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok(Self::{0}),\n", v.name))
                .collect();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => Self::{vn}(::serde::Deserialize::deserialize(p)?),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let mut arm = format!(
                            "\"{vn}\" => {{\n\
                             p.begin_array()?;\n\
                             let mut __afirst = true;\n"
                        );
                        let mut binders = Vec::new();
                        for k in 0..*n {
                            arm.push_str(&format!(
                                "if !p.array_next(&mut __afirst)? {{\n\
                                 return ::std::result::Result::Err(p.error(\"tuple variant too short\"));\n\
                                 }}\n\
                                 let __f{k} = ::serde::Deserialize::deserialize(p)?;\n"
                            ));
                            binders.push(format!("__f{k}"));
                        }
                        arm.push_str(
                            "if p.array_next(&mut __afirst)? {\n\
                             return ::std::result::Result::Err(p.error(\"tuple variant too long\"));\n\
                             }\n",
                        );
                        arm.push_str(&format!("Self::{vn}({})\n}}\n", binders.join(", ")));
                        payload_arms.push_str(&arm);
                    }
                    VariantKind::Struct(fields) => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n{}}}\n",
                            gen_named_fields_reader(&format!("Self::{vn}"), fields, false),
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "match p.peek() {{\n\
                 ::std::option::Option::Some(b'\"') => {{\n\
                 let __s = p.parse_string()?;\n\
                 match __s.as_str() {{\n\
                 {unit_arms}\
                 _ => ::std::result::Result::Err(p.error(\"unknown enum variant\")),\n\
                 }}\n\
                 }}\n\
                 ::std::option::Option::Some(b'{{') => {{\n\
                 p.begin_object()?;\n\
                 let mut __first = true;\n\
                 let __key = match p.object_key(&mut __first)? {{\n\
                 ::std::option::Option::Some(k) => k,\n\
                 ::std::option::Option::None => return ::std::result::Result::Err(p.error(\"empty enum object\")),\n\
                 }};\n\
                 let __value = match __key.as_str() {{\n\
                 {payload_arms}\
                 _ => return ::std::result::Result::Err(p.error(\"unknown enum variant\")),\n\
                 }};\n\
                 if p.object_key(&mut __first)?.is_some() {{\n\
                 return ::std::result::Result::Err(p.error(\"enum object must have one key\"));\n\
                 }}\n\
                 ::std::result::Result::Ok(__value)\n\
                 }}\n\
                 _ => ::std::result::Result::Err(p.error(\"expected enum\")),\n\
                 }}\n"
            ));
            name
        }
    };
    // unreachable_code: for unit-only enums every payload-match arm
    // diverges, making the generated single-key check unreachable.
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         #[allow(unreachable_code)]\n\
         fn deserialize(p: &mut ::serde::json::Parser<'_>) \
         -> ::std::result::Result<Self, ::serde::json::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

/// Emits an expression-position block that parses `{ "field": value, ... }`
/// and evaluates to `<ctor> { ... }` (wrapped in `Ok` when `wrap_ok`).
/// Missing-field errors `return` out of the enclosing `deserialize` fn.
fn gen_named_fields_reader(ctor: &str, fields: &[Field], wrap_ok: bool) -> String {
    let mut s = String::new();
    s.push_str("p.begin_object()?;\n");
    for f in fields {
        let f = &f.name;
        s.push_str(&format!(
            "let mut __field_{f} = ::std::option::Option::None;\n"
        ));
    }
    s.push_str(
        "let mut __first = true;\n\
         while let ::std::option::Option::Some(__key) = p.object_key(&mut __first)? {\n\
         match __key.as_str() {\n",
    );
    for f in fields {
        let f = &f.name;
        s.push_str(&format!(
            "\"{f}\" => __field_{f} = ::std::option::Option::Some(::serde::Deserialize::deserialize(p)?),\n"
        ));
    }
    s.push_str(
        "_ => p.skip_value()?,\n\
         }\n\
         }\n",
    );
    if wrap_ok {
        s.push_str(&format!("::std::result::Result::Ok({ctor} {{\n"));
    } else {
        s.push_str(&format!("{ctor} {{\n"));
    }
    for f in fields {
        let missing = f.default.missing_expr().unwrap_or_else(|| {
            format!(
                "return ::std::result::Result::Err(p.error(\"missing field `{}`\"))",
                f.name
            )
        });
        s.push_str(&format!(
            "{f}: match __field_{f} {{\n\
             ::std::option::Option::Some(v) => v,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n",
            f = f.name,
        ));
    }
    if wrap_ok {
        s.push_str("})\n");
    } else {
        s.push_str("}\n");
    }
    s
}
