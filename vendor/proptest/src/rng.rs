//! Deterministic generator for test-case sampling (xoshiro256++).

/// Random source used to sample strategies; seeded from the test name so
/// every run of a given test sees the same case sequence.
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds a generator seeded by an FNV-1a hash of `name`.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` below `bound` (rejection sampling; `bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return x % bound;
            }
        }
    }
}
