//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! `name in strategy` arguments, range strategies over floats and integers,
//! tuple strategies, `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Cases are generated from a seed derived from the test function's name, so
//! runs are deterministic. There is no shrinking: a failing case reports its
//! case index and assertion message.

pub mod collection;
pub mod strategy;
pub mod test_runner;

mod rng;

pub use rng::TestRng;

/// Everything tests import via `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` samples its strategies
/// `cases` times and runs the body; `prop_assert*` failures abort the case
/// with a message. Following upstream idiom, each function must carry its
/// own `#[test]` attribute (all call sites in this workspace do) — the
/// attributes are passed through verbatim, not synthesized.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); ) => {};
    (@impl ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )*
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(msg) = __outcome {
                    panic!("proptest `{}` case {}/{} failed: {}",
                           stringify!($name), __case + 1, __cfg.cases, msg);
                }
            }
        }
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    // No config header: default number of cases.
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({:?} vs {:?})",
                stringify!($left), stringify!($right), __l, __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Asserts two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($left), stringify!($right), __l,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}
