//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::TestRng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        ((self.start as f64)..(self.end as f64)).sample(rng) as f32
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(rng.below(span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);
