//! Test-runner configuration.

/// Controls how many random cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}
