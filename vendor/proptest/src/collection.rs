//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

/// A length specification for [`vec`]: exact or a half-open range.
#[derive(Debug, Clone)]
pub enum SizeRange {
    /// Exactly this many elements.
    Exact(usize),
    /// Uniformly random length in `[start, end)`.
    Between(usize, usize),
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange::Exact(n)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange::Between(r.start, r.end)
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Creates a strategy for `Vec`s with `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = match self.size {
            SizeRange::Exact(n) => n,
            SizeRange::Between(lo, hi) => {
                assert!(lo < hi, "empty vec size range");
                lo + rng.below((hi - lo) as u64) as usize
            }
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
