//! Smoke tests for the vendored proptest stand-in, mirroring the exact
//! invocation shapes used across the workspace test suites.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn floats_in_range(
        a in 0.0f64..1e9,
        b in -5.0f64..5.0,
    ) {
        prop_assert!((0.0..1e9).contains(&a));
        prop_assert!((-5.0..5.0).contains(&b));
    }

    #[test]
    fn tuples_and_vecs(
        pairs in prop::collection::vec((0.0f64..1.0, 10.0f64..20.0), 1..40),
        nested in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 5), 1..20),
        digits in prop::collection::vec(1u8..=5, 1..5),
        exact in prop::collection::vec(-5.0f64..5.0, 10),
        seed in 0u64..1000,
        label in 0usize..3,
    ) {
        prop_assert_eq!(exact.len(), 10);
        prop_assert!(pairs.iter().all(|p| p.0 < 1.0 && p.1 >= 10.0));
        prop_assert!(nested.iter().all(|r| r.len() == 5));
        prop_assert!(digits.iter().all(|&d| (1..=5).contains(&d)));
        prop_assert!(seed < 1000 && label < 3);
        prop_assert_ne!(exact.len(), 0);
    }
}

#[test]
fn deterministic_across_runs() {
    let mut r1 = proptest::TestRng::from_name("x");
    let mut r2 = proptest::TestRng::from_name("x");
    for _ in 0..100 {
        assert_eq!(r1.next_u64(), r2.next_u64());
    }
}
