//! Offline stand-in for `crossbeam`'s scoped-thread API, built on
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Call sites use the crossbeam 0.8 shape:
//!
//! ```ignore
//! crossbeam::scope(|scope| {
//!     scope.spawn(|_| { /* work */ });
//! }).unwrap();
//! ```
//!
//! `std::thread::scope` already joins all threads and propagates child panics
//! by re-panicking, so `scope` here always returns `Ok` when it returns.

use std::any::Any;

pub mod thread {
    //! Mirror of `crossbeam::thread` (`crossbeam_utils::thread`).
    pub use crate::{scope, Scope, ScopedJoinHandle};
}

/// A scope handle passed to closures; mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread, mirroring `crossbeam`'s `ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle, like
    /// crossbeam's `spawn` (commonly ignored as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Creates a scope in which threads borrowing from the environment can be
/// spawned; joins them all before returning.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}
