#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# All cargo invocations are offline — every dependency is vendored.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy -q --offline --workspace --all-targets -- -D warnings

# Library code on the adaptation path must not panic on external input or
# training failures: unwrap/expect are denied in the warper, query, and
# storage crates' libraries (tests, benches, and binaries are exempt).
echo "== cargo clippy --lib (no unwrap/expect in library code)"
cargo clippy -q --offline --no-deps --lib \
    -p warper-core -p warper-query -p warper-storage -p warper-durable \
    -- -D warnings -D clippy::unwrap-used -D clippy::expect-used

# Durability discipline: every file operation in the warper, serve, and
# durable libraries must go through the `Vfs` trait so the failpoint/power-cut
# harness sees it. Direct std::fs use is allowed only in the Vfs
# implementation module itself.
echo "== lint: no direct std::fs outside the Vfs module"
if grep -rn "std::fs" crates/warper/src crates/serve/src crates/durable/src \
    | grep -v "^crates/durable/src/vfs.rs:"; then
    echo "direct std::fs use found outside crates/durable/src/vfs.rs" >&2
    exit 1
fi

# Transport discipline: raw sockets are confined to the TCP transport
# module — everything else speaks through the `ByteStream` seam so the
# link-fault injector (`FailpointNet`) sees every byte. Direct std::net
# use anywhere else bypasses fault injection.
echo "== lint: no direct std::net outside the TCP transport module"
if grep -rn "std::net" crates/warper/src crates/serve/src crates/durable/src \
    | grep -v "^crates/serve/src/net/tcp.rs:"; then
    echo "direct std::net use found outside crates/serve/src/net/tcp.rs" >&2
    exit 1
fi

# Benches are excluded from `cargo test` runs; make sure the perf harnesses
# (annotator, gemm, figure/table benches) at least compile.
echo "== cargo check --benches"
cargo check -q --offline --benches -p warper-bench

echo "== cargo test -q"
cargo test -q --offline --workspace

# Chaos/property suites: fault injection and snapshot corruption.
echo "== cargo test -q --features faults"
cargo test -q --offline --workspace --features faults

# Crash-recovery proptests: kill the store at every schedulable failpoint
# (power cut, torn write, short write, op error) and prove every
# acknowledged label survives recovery.
echo "== crash-recovery proptests (warper-durable, faults feature)"
cargo test -q --offline -p warper-durable --features faults --test crash_recovery

# Network failover proptests: cut / delay / torn-write / garbage the
# replication link at every op for every fault kind and prove every
# replicated-acked label survives failover from the standby's directory,
# promotion stays gated on a validated checkpoint, and clients get typed
# errors (never hangs) across link faults.
echo "== network failover proptests (warper-serve, faults feature)"
cargo test -q --offline -p warper-serve --features faults --test net_failover

# Portable-path kernel equivalence: the workspace builds with
# target-cpu=native (.cargo/config.toml), so the SIMD tiers are compiled
# in everywhere above. Re-run the kernel-equivalence and quantization-error
# proptests with RUSTFLAGS cleared — no target-cpu=native, so the
# runtime-dispatch fallback is what autovectorization-free builds ship —
# in a separate target dir to keep caches apart.
echo "== portable-path proptests (no target-cpu=native)"
RUSTFLAGS="" CARGO_TARGET_DIR=target/portable \
    cargo test -q --offline -p warper-linalg --test gemm32_proptests
RUSTFLAGS="" CARGO_TARGET_DIR=target/portable \
    cargo test -q --offline -p warper-ce --test quant_proptests

# Serving smoke: 1k queries at a fixed seed with mid-run drift and
# background adaptation. --smoke fails the run on any served error, any
# shed at idle load, a p99 above the generous 250 ms bound, or an
# adaptation loop that never ran.
echo "== serve smoke (1k queries, drift + background adaptation)"
cargo run -q --release --offline --bin warper -- serve \
    --queries 1000 --seed 7 --drift-at 500 --smoke

# Serving benchmark: asserts the >=3x micro-batching speedup, the >=4x
# f32-vs-f64 quantized-serving speedup, and the no-stall drift/adaptation
# run, and publishes BENCH_serve.json.
echo "== cargo bench --bench serve (publishes BENCH_serve.json)"
cargo bench -q --offline -p warper-bench --bench serve

echo "CI OK"
