#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# All cargo invocations are offline — every dependency is vendored.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "== cargo test -q"
cargo test -q --offline --workspace

echo "CI OK"
